"""Population dynamics: seeded timelines of epochs over a community.

The paper's setting (§2) is an *open* decentralized community: "agents
may decide to publish or update documents" and "spoofing and identity
forging … become facile to achieve."  The EX1–EX19 suite evaluates a
frozen snapshot of such a community; this module makes the population
itself move.  A :class:`Timeline` advances a
:class:`~repro.datasets.generators.SyntheticCommunity` through discrete
epochs, applying composable :class:`PopulationEvent`\\ s:

* :class:`AgentChurn` — honest members leave (trust edges torn down on
  both sides) and join (small profiles, homophilous trust edges);
* :class:`ColdStartWave` — bursts of newcomers with one or two ratings
  and a single outbound trust edge, the sparsity regime of §3.2;
* :class:`SybilRingGrowth` — a phased sybil attack: every epoch the ring
  accretes identities (via :func:`~repro.evaluation.attacks
  .inject_sybil_region` with a per-epoch ``wave``), interlinks with the
  previous waves, copies a victim's profile, and gains fresh attack
  edges from honest agents;
* :class:`TrustSpamCampaign` — compromised honest accounts start
  vouching for the sybil region, the social-engineering channel;
* :class:`InterestDrift` — agents migrate to another interest cluster
  and rate from its product pool, eroding the planted homophily.

Every event mutates the timeline's *working copy* of the dataset —
the input community is never touched — and records ground truth into
the shared :class:`EpochState`.  After each epoch the timeline emits an
:class:`EpochSnapshot` holding an independent dataset copy plus the
frozen :class:`EpochTruth`, so downstream scoring can never corrupt
history.  All randomness flows from string-derived
:class:`random.Random` streams keyed by ``(seed, epoch, event index,
event name)``: runs are byte-reproducible and insertion-order free.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import ClassVar

from ..core.models import Agent, Dataset, Product, Rating, TrustStatement
from ..datasets.generators import SyntheticCommunity
from ..obs import get_metrics, get_tracer
from .attacks import inject_sybil_region

__all__ = [
    "AgentChurn",
    "ColdStartWave",
    "EpochSnapshot",
    "EpochState",
    "EpochTruth",
    "InterestDrift",
    "PopulationEvent",
    "SybilRingGrowth",
    "Timeline",
    "TrustSpamCampaign",
    "copy_dataset",
]

#: URI namespaces for minted identities; epoch-qualified so repeated
#: events never collide (the same invariant attacks.py enforces for
#: sybil waves).
JOINER_PREFIX = "http://agents.example.org/join-"
NEWCOMER_PREFIX = "http://agents.example.org/cold-"

#: Minimum honest population a churn event must leave behind — below
#: this the evaluation protocol has nothing left to split.
MIN_POPULATION = 10


def copy_dataset(dataset: Dataset) -> Dataset:
    """An independent shallow copy (entries are immutable dataclasses)."""
    return Dataset(
        agents=dict(dataset.agents),
        products=dict(dataset.products),
        trust=dict(dataset.trust),
        ratings=dict(dataset.ratings),
    )


@dataclass(frozen=True, slots=True)
class EpochTruth:
    """Ground truth emitted for one epoch.

    Per-epoch sets (``joined``, ``departed``, ``newcomers``,
    ``drifted``) describe what happened *during* the epoch; cumulative
    fields (``sybils``, ``bridges``, ``compromised``,
    ``pushed_products``) describe the attack surface present *at the
    end* of it.
    """

    epoch: int
    joined: frozenset[str]
    departed: frozenset[str]
    newcomers: frozenset[str]
    drifted: frozenset[str]
    sybils: frozenset[str]
    bridges: int
    compromised: frozenset[str]
    pushed_products: frozenset[str]


@dataclass(frozen=True, slots=True)
class EpochSnapshot:
    """One epoch's independent dataset copy plus its ground truth."""

    epoch: int
    dataset: Dataset
    truth: EpochTruth


@dataclass
class EpochState:
    """Mutable working state threaded through the events of a timeline.

    Events mutate :attr:`dataset` (or replace it with an attacked copy)
    and record what they did; :meth:`begin_epoch` resets the per-epoch
    bookkeeping while cumulative attack state persists.
    """

    dataset: Dataset
    community: SyntheticCommunity
    epoch: int = 0
    membership: dict[str, int] = field(default_factory=dict)
    # -- cumulative attack surface -----------------------------------------
    sybils: set[str] = field(default_factory=set)
    bridges: int = 0
    compromised: set[str] = field(default_factory=set)
    pushed_products: set[str] = field(default_factory=set)
    # -- per-epoch bookkeeping ---------------------------------------------
    joined: set[str] = field(default_factory=set)
    departed: set[str] = field(default_factory=set)
    newcomers: set[str] = field(default_factory=set)
    drifted: set[str] = field(default_factory=set)
    sybils_added: int = 0
    bridges_added: int = 0
    spam_edges: int = 0

    def begin_epoch(self, epoch: int) -> None:
        self.epoch = epoch
        self.joined = set()
        self.departed = set()
        self.newcomers = set()
        self.drifted = set()
        self.sybils_added = 0
        self.bridges_added = 0
        self.spam_edges = 0

    def honest_agents(self) -> list[str]:
        """Sorted URIs of live agents outside the sybil region."""
        return sorted(set(self.dataset.agents) - self.sybils)

    def remove_agent(self, uri: str) -> None:
        """Tear *uri* out of the community: edges on both sides go too."""
        del self.dataset.agents[uri]
        for key in [
            k for k in self.dataset.trust if k[0] == uri or k[1] == uri
        ]:
            del self.dataset.trust[key]
        for key in [k for k in self.dataset.ratings if k[0] == uri]:
            del self.dataset.ratings[key]
        self.membership.pop(uri, None)
        self.compromised.discard(uri)
        self.departed.add(uri)

    def add_member(
        self,
        uri: str,
        name: str,
        cluster: int,
        rng: random.Random,
        n_ratings: int,
        trust_out: int,
        vouched: bool,
    ) -> None:
        """Mint one honest joiner: profile from its cluster's pool.

        *vouched* adds a single inbound trust edge from a cluster
        member, integrating the joiner into the web of trust; cold-start
        newcomers stay unvouched (nobody knows them yet).
        """
        if uri in self.dataset.agents:
            raise ValueError(f"joiner identity collision: {uri!r}")
        self.dataset.add_agent(Agent(uri=uri, name=name))
        self.membership[uri] = cluster
        pool = list(
            self.community.cluster_products.get(cluster)
            or sorted(self.dataset.products)
        )
        for product in sorted(rng.sample(pool, min(n_ratings, len(pool)))):
            self.dataset.add_rating(Rating(agent=uri, product=product, value=1.0))
        peers = sorted(
            a
            for a in self.honest_agents()
            if a != uri and self.membership.get(a) == cluster
        ) or [a for a in self.honest_agents() if a != uri]
        for target in sorted(rng.sample(peers, min(trust_out, len(peers)))):
            self.dataset.add_trust(
                TrustStatement(
                    source=uri, target=target, value=round(rng.uniform(0.4, 1.0), 3)
                )
            )
        if vouched and peers:
            voucher = peers[rng.randrange(len(peers))]
            self.dataset.add_trust(
                TrustStatement(source=voucher, target=uri, value=0.5)
            )
        self.joined.add(uri)

    def truth(self) -> EpochTruth:
        return EpochTruth(
            epoch=self.epoch,
            joined=frozenset(self.joined),
            departed=frozenset(self.departed),
            newcomers=frozenset(self.newcomers),
            drifted=frozenset(self.drifted),
            sybils=frozenset(self.sybils),
            bridges=self.bridges,
            compromised=frozenset(self.compromised),
            pushed_products=frozenset(self.pushed_products),
        )


class PopulationEvent(ABC):
    """One composable population change, applied once per epoch.

    Implementations draw randomness only from the *rng* handed to
    :meth:`apply` — it is keyed by (timeline seed, epoch, event index,
    event name), which is what makes timelines reproducible regardless
    of how events are combined.
    """

    name: ClassVar[str] = "event"

    @abstractmethod
    def apply(self, state: EpochState, rng: random.Random) -> None:
        """Mutate *state* for the current epoch."""


@dataclass(frozen=True, slots=True)
class AgentChurn(PopulationEvent):
    """Honest members leave and join at per-epoch rates."""

    leave_rate: float = 0.05
    join_rate: float = 0.05
    ratings_per_joiner: int = 4
    trust_out: int = 3

    name: ClassVar[str] = "churn"

    def __post_init__(self) -> None:
        if not 0.0 <= self.leave_rate <= 1.0 or not 0.0 <= self.join_rate <= 1.0:
            raise ValueError("churn rates must lie in [0, 1]")

    def apply(self, state: EpochState, rng: random.Random) -> None:
        honest = state.honest_agents()
        n_leave = min(
            int(self.leave_rate * len(honest)),
            max(0, len(honest) - MIN_POPULATION),
        )
        for uri in sorted(rng.sample(honest, n_leave)):
            state.remove_agent(uri)
        n_join = int(self.join_rate * len(honest))
        n_clusters = state.community.config.n_clusters
        for i in range(n_join):
            uri = f"{JOINER_PREFIX}e{state.epoch:02d}-{i:04d}"
            state.add_member(
                uri,
                name=f"Joiner {state.epoch}/{i}",
                cluster=rng.randrange(n_clusters),
                rng=rng,
                n_ratings=self.ratings_per_joiner,
                trust_out=self.trust_out,
                vouched=True,
            )


@dataclass(frozen=True, slots=True)
class ColdStartWave(PopulationEvent):
    """A burst of barely-profiled, unvouched newcomers per epoch."""

    wave_size: int = 10
    ratings_per_newcomer: int = 2
    trust_out: int = 1

    name: ClassVar[str] = "coldstart"

    def __post_init__(self) -> None:
        if self.wave_size < 0:
            raise ValueError("wave_size must be non-negative")

    def apply(self, state: EpochState, rng: random.Random) -> None:
        n_clusters = state.community.config.n_clusters
        for i in range(self.wave_size):
            uri = f"{NEWCOMER_PREFIX}e{state.epoch:02d}-{i:04d}"
            state.add_member(
                uri,
                name=f"Newcomer {state.epoch}/{i}",
                cluster=rng.randrange(n_clusters),
                rng=rng,
                n_ratings=self.ratings_per_newcomer,
                trust_out=self.trust_out,
                vouched=False,
            )
            state.newcomers.add(uri)


@dataclass(frozen=True, slots=True)
class SybilRingGrowth(PopulationEvent):
    """A phased sybil attack: the ring accretes identities and bridges.

    Each epoch mints ``ring_growth`` fresh sybils in their own ``wave``
    namespace (epoch + 1, so wave 0's legacy URIs stay reserved for the
    one-shot attacks), wires them densely, interlinks them with earlier
    waves (adversary-internal edges are free), copies the victim's
    rating profile onto them (§3.2's similarity forging), rates the
    campaign's pushed products, and finally acquires
    ``bridges_per_epoch`` attack edges from honest agents — the only
    resource the adversary cannot forge.
    """

    ring_growth: int = 6
    bridges_per_epoch: int = 1
    internal_degree: int = 4
    n_pushed: int = 2
    victim: str | None = None
    bridge_weight: float = 0.9

    name: ClassVar[str] = "sybilring"

    def __post_init__(self) -> None:
        if self.ring_growth < 1:
            raise ValueError("ring_growth must be at least 1")
        if self.bridges_per_epoch < 0:
            raise ValueError("bridges_per_epoch must be non-negative")

    def _victim(self, state: EpochState, honest: list[str]) -> str | None:
        if self.victim is not None and self.victim in state.dataset.agents:
            return self.victim
        return honest[0] if honest else None

    def apply(self, state: EpochState, rng: random.Random) -> None:
        honest = state.honest_agents()
        previous = sorted(state.sybils)
        region = inject_sybil_region(
            state.dataset,
            n_sybils=self.ring_growth,
            n_bridges=0,
            seed=rng.randrange(2**31),
            internal_degree=self.internal_degree,
            wave=state.epoch + 1,
        )
        state.dataset = region.dataset
        fresh = sorted(region.sybils)

        # Accretion: each fresh sybil vouches for (and is vouched by) a
        # couple of earlier-wave sybils, so the ring stays one region.
        for uri in fresh:
            for other in rng.sample(previous, min(2, len(previous))):
                state.dataset.add_trust(
                    TrustStatement(source=uri, target=other, value=1.0)
                )
                state.dataset.add_trust(
                    TrustStatement(source=other, target=uri, value=1.0)
                )

        # Profile forging: mint the campaign's pushed products once,
        # then have every fresh sybil copy the victim and push them.
        if not state.pushed_products:
            for i in range(self.n_pushed):
                identifier = f"isbn:push{i:02d}"
                state.dataset.add_product(
                    Product(identifier=identifier, title=f"Pushed {identifier}")
                )
                state.pushed_products.add(identifier)
        victim = self._victim(state, honest)
        victim_positives = (
            [
                product
                for product, value in state.dataset.ratings_of(victim).items()
                if value > 0 and product not in state.pushed_products
            ]
            if victim is not None
            else []
        )
        for uri in fresh:
            for product in victim_positives:
                state.dataset.add_rating(
                    Rating(agent=uri, product=product, value=1.0)
                )
            for product in sorted(state.pushed_products):
                state.dataset.add_rating(
                    Rating(agent=uri, product=product, value=1.0)
                )

        # Attack edges: honest sources only — these are the bottleneck
        # a good group trust metric bounds admission by.
        for _ in range(self.bridges_per_epoch):
            if not honest:
                break
            source = honest[rng.randrange(len(honest))]
            target = fresh[rng.randrange(len(fresh))]
            state.dataset.add_trust(
                TrustStatement(source=source, target=target, value=self.bridge_weight)
            )
            state.bridges += 1
            state.bridges_added += 1

        state.sybils.update(fresh)
        state.sybils_added += len(fresh)


@dataclass(frozen=True, slots=True)
class TrustSpamCampaign(PopulationEvent):
    """Compromised honest accounts vouch for the sybil region.

    Models the social-engineering channel: each epoch a few more honest
    agents fall and start emitting trust edges into the ring.  A no-op
    until some sybils exist (compose it after :class:`SybilRingGrowth`).
    """

    compromised_per_epoch: int = 2
    edges_per_agent: int = 3
    weight: float = 0.9

    name: ClassVar[str] = "trustspam"

    def __post_init__(self) -> None:
        if self.compromised_per_epoch < 0:
            raise ValueError("compromised_per_epoch must be non-negative")
        if self.edges_per_agent < 1:
            raise ValueError("edges_per_agent must be at least 1")

    def apply(self, state: EpochState, rng: random.Random) -> None:
        targets = sorted(state.sybils & set(state.dataset.agents))
        if not targets:
            return
        candidates = [
            a for a in state.honest_agents() if a not in state.compromised
        ]
        picked = sorted(
            rng.sample(candidates, min(self.compromised_per_epoch, len(candidates)))
        )
        for source in picked:
            chosen = rng.sample(targets, min(self.edges_per_agent, len(targets)))
            for target in sorted(chosen):
                state.dataset.add_trust(
                    TrustStatement(source=source, target=target, value=self.weight)
                )
                state.bridges += 1
                state.bridges_added += 1
                state.spam_edges += 1
            state.compromised.add(source)


@dataclass(frozen=True, slots=True)
class InterestDrift(PopulationEvent):
    """A fraction of honest agents migrate to another interest cluster.

    Drifters keep their history but start rating from the new cluster's
    product pool, eroding the taxonomy-homophily signal the generator
    planted (§3.2's premise under stress).
    """

    drift_rate: float = 0.1
    ratings_per_drift: int = 3

    name: ClassVar[str] = "drift"

    def __post_init__(self) -> None:
        if not 0.0 <= self.drift_rate <= 1.0:
            raise ValueError("drift_rate must lie in [0, 1]")

    def apply(self, state: EpochState, rng: random.Random) -> None:
        n_clusters = state.community.config.n_clusters
        if n_clusters < 2:
            return
        candidates = [a for a in state.honest_agents() if a in state.membership]
        n_drift = int(self.drift_rate * len(candidates))
        for uri in sorted(rng.sample(candidates, n_drift)):
            old = state.membership[uri]
            new = (old + 1 + rng.randrange(n_clusters - 1)) % n_clusters
            state.membership[uri] = new
            pool = [
                p
                for p in state.community.cluster_products.get(new, ())
                if (uri, p) not in state.dataset.ratings
            ]
            for product in sorted(
                rng.sample(pool, min(self.ratings_per_drift, len(pool)))
            ):
                state.dataset.add_rating(
                    Rating(agent=uri, product=product, value=1.0)
                )
            state.drifted.add(uri)


@dataclass
class Timeline:
    """A seeded sequence of epochs applying *events* in order.

    :meth:`run` never touches ``community.dataset``; it works on a copy
    and returns one :class:`EpochSnapshot` per epoch, each holding its
    own independent dataset copy.  Identical (community, events,
    n_epochs, seed) yield byte-identical snapshots.
    """

    community: SyntheticCommunity
    events: Sequence[PopulationEvent]
    n_epochs: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_epochs < 1:
            raise ValueError("n_epochs must be at least 1")
        if not self.events:
            raise ValueError("a timeline needs at least one event")

    def run(self) -> list[EpochSnapshot]:
        tracer = get_tracer()
        metrics = get_metrics()
        state = EpochState(
            dataset=copy_dataset(self.community.dataset),
            community=self.community,
            membership=dict(self.community.membership),
        )
        snapshots: list[EpochSnapshot] = []
        for epoch in range(self.n_epochs):
            state.begin_epoch(epoch)
            with tracer.span(
                "dynamics.epoch", epoch=epoch, events=len(self.events)
            ) as span:
                for index, event in enumerate(self.events):
                    rng = random.Random(
                        f"{self.seed}:{epoch}:{index}:{event.name}"
                    )
                    with tracer.span(f"dynamics.event.{event.name}", epoch=epoch):
                        event.apply(state, rng)
                state.dataset.validate()
                span.set("agents", len(state.dataset.agents))
                span.set("sybils", len(state.sybils))
            metrics.counter("dynamics.agents_joined").inc(len(state.joined))
            metrics.counter("dynamics.agents_left").inc(len(state.departed))
            metrics.counter("dynamics.agents_drifted").inc(len(state.drifted))
            metrics.counter("dynamics.sybils_added").inc(state.sybils_added)
            metrics.counter("dynamics.bridges_added").inc(state.bridges_added)
            metrics.counter("dynamics.spam_edges").inc(state.spam_edges)
            metrics.histogram("dynamics.epoch_population").observe(
                len(state.dataset.agents)
            )
            snapshots.append(
                EpochSnapshot(
                    epoch=epoch,
                    dataset=copy_dataset(state.dataset),
                    truth=state.truth(),
                )
            )
        return snapshots
