"""Evaluation metrics for recommendation quality and rank agreement.

Everything here is implemented from first principles on plain Python
containers — top-N set metrics (precision/recall/F1, hit rate), error
metrics (MAE), rank-correlation coefficients (Kendall's tau-a, Spearman's
rho), catalogue coverage, and small statistical helpers used by the
experiment tables.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

from ..core.similarity import isclose

__all__ = [
    "catalog_coverage",
    "f1_score",
    "hit_rate",
    "kendall_tau",
    "mean",
    "mean_absolute_error",
    "precision_at",
    "recall_at",
    "spearman_rho",
    "standard_error",
    "stdev",
]


def precision_at(recommended: Sequence[str], relevant: set[str]) -> float:
    """Fraction of recommended items that are relevant (0.0 on empty recs)."""
    if not recommended:
        return 0.0
    hits = sum(1 for item in recommended if item in relevant)
    return hits / len(recommended)


def recall_at(recommended: Sequence[str], relevant: set[str]) -> float:
    """Fraction of relevant items that were recommended (0.0 on empty set)."""
    if not relevant:
        return 0.0
    hits = sum(1 for item in recommended if item in relevant)
    return hits / len(relevant)


def f1_score(precision: float, recall: float) -> float:
    """Harmonic mean of precision and recall (0.0 when both are 0)."""
    if isclose(precision + recall, 0.0):
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def hit_rate(recommended: Sequence[str], relevant: set[str]) -> float:
    """1.0 if at least one relevant item was recommended, else 0.0."""
    return 1.0 if any(item in relevant for item in recommended) else 0.0


def mean_absolute_error(
    predicted: Mapping[str, float], actual: Mapping[str, float]
) -> float:
    """MAE over the keys present in both mappings (0.0 if none shared)."""
    shared = predicted.keys() & actual.keys()
    if not shared:
        return 0.0
    return sum(abs(predicted[k] - actual[k]) for k in shared) / len(shared)


def catalog_coverage(
    recommendation_lists: Iterable[Sequence[str]], catalog_size: int
) -> float:
    """Fraction of the catalogue that appears in at least one rec list."""
    if catalog_size <= 0:
        return 0.0
    seen: set[str] = set()
    for items in recommendation_lists:
        seen.update(items)
    return len(seen) / catalog_size


def kendall_tau(left: Sequence[float], right: Sequence[float]) -> float:
    """Kendall's tau-a between two equal-length score sequences.

    O(n²) pair counting — exact and dependency-free; the rank lists the
    experiments compare hold at most a few hundred entries.  Returns 0.0
    for sequences shorter than 2.
    """
    n = len(left)
    if n != len(right):
        raise ValueError("sequences must have equal length")
    if n < 2:
        return 0.0
    concordant = 0
    discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            # Compare signs rather than the product a*b: the product of
            # two tiny differences can underflow to 0.0 and silently turn
            # a concordant pair into a tie.
            a = (left[i] > left[j]) - (left[i] < left[j])
            b = (right[i] > right[j]) - (right[i] < right[j])
            if a * b > 0:
                concordant += 1
            elif a * b < 0:
                discordant += 1
    return (concordant - discordant) / (n * (n - 1) / 2)


def _ranks(values: Sequence[float]) -> list[float]:
    """Average ranks (1-based) with ties sharing their mean rank."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        average = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[order[k]] = average
        i = j + 1
    return ranks


def spearman_rho(left: Sequence[float], right: Sequence[float]) -> float:
    """Spearman's rank correlation (Pearson over average ranks)."""
    n = len(left)
    if n != len(right):
        raise ValueError("sequences must have equal length")
    if n < 2:
        return 0.0
    rank_left = _ranks(left)
    rank_right = _ranks(right)
    mean_left = sum(rank_left) / n
    mean_right = sum(rank_right) / n
    cov = sum(
        (a - mean_left) * (b - mean_right) for a, b in zip(rank_left, rank_right)
    )
    var_left = sum((a - mean_left) ** 2 for a in rank_left)
    var_right = sum((b - mean_right) ** 2 for b in rank_right)
    if var_left <= 0 or var_right <= 0:
        return 0.0
    return max(-1.0, min(1.0, cov / (math.sqrt(var_left) * math.sqrt(var_right))))


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 on empty input, which experiment tables prefer
    over an exception for empty strata)."""
    return sum(values) / len(values) if values else 0.0


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (0.0 for fewer than two values)."""
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (n - 1))


def standard_error(values: Sequence[float]) -> float:
    """Standard error of the mean (0.0 for fewer than two values)."""
    n = len(values)
    if n < 2:
        return 0.0
    return stdev(values) / math.sqrt(n)
