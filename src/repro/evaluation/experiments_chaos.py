"""EX18 — chaos experiment: recommendation quality vs. fault rate.

The paper's decentralized architecture stands or falls with its behavior
on an unreliable Web: agents "publish or update documents" on remote
hosts (§2) and "tailored crawlers … ensure data freshness" (§4.1), which
presumes fetches that can fail.  EX18 measures that directly: the full
split-channel replication loop (globals + homepage crawl + weblog
mining) runs against a :class:`~repro.web.faults.FaultyWeb` at
increasing fault rates, with retries, circuit breakers, and
stale-replica fallback enabled, and reports replica coverage plus
top-N agreement with the fault-free reference run.

Deterministic given its seed, like every other experiment in the suite.
"""

from __future__ import annotations

from ..core.models import Dataset
from ..core.recommender import SemanticWebRecommender
from ..core.taxonomy import Taxonomy
from ..datasets.generators import SyntheticCommunity
from ..web.faults import FaultPlan, FaultyWeb, RetryPolicy
from ..web.network import SimulatedWeb
from ..web.replicator import (
    CommunityReplicator,
    ReplicationReport,
    publish_split_community,
)
from .experiments import default_community
from .protocol import Table

__all__ = ["run_ex18_chaos"]


def _chaos_plan(rate: float, seed: int) -> FaultPlan:
    """The fault mix EX18 applies at a headline *rate*.

    Transients dominate (they are what retries exist for); slow fetches,
    corruption and permanent per-site outages scale down from the rate
    so every resilience mechanism is exercised without the outages
    drowning everything else.
    """
    return FaultPlan(
        transient_rate=rate,
        slow_rate=rate / 2.0,
        corruption_rate=rate / 4.0,
        outage_rate=rate / 8.0,
        seed=seed,
    )


def _replicate(
    community: SyntheticCommunity,
    plan: FaultPlan | None,
    retry: RetryPolicy,
) -> tuple[str, Dataset, Taxonomy, ReplicationReport]:
    """Two full split-channel replication passes, optionally under faults.

    The first pass is the cold crawl; the second re-replicates into the
    now-warm store, which is where graceful degradation becomes visible
    (failed refreshes fall back to stale replicas, corrupt downloads are
    quarantined behind good copies).  Results describe the second pass.
    """
    web = SimulatedWeb()
    taxonomy_uri, catalog_uri = publish_split_community(
        web, community.dataset, community.taxonomy
    )
    consumer_web = web if plan is None else FaultyWeb(web, plan)
    seed_agent = sorted(community.dataset.agents)[0]
    replicator = CommunityReplicator(web=consumer_web, retry=retry)
    replicator.replicate(
        [seed_agent], taxonomy_uri=taxonomy_uri, catalog_uri=catalog_uri
    )
    dataset, taxonomy, report = replicator.replicate(
        [seed_agent], taxonomy_uri=taxonomy_uri, catalog_uri=catalog_uri
    )
    return seed_agent, dataset, taxonomy, report


def run_ex18_chaos(
    community: SyntheticCommunity | None = None,
    fault_rates: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5),
    seed: int = 53,
    top_n: int = 10,
    max_retries: int = 3,
) -> Table:
    """Replica coverage and rec agreement as the Web gets less reliable."""
    community = community or default_community(n_agents=150, n_products=300)
    retry = RetryPolicy(max_retries=max_retries, seed=seed)

    principal, reference_dataset, reference_taxonomy, _ = _replicate(
        community, plan=None, retry=retry
    )
    reference = SemanticWebRecommender.from_dataset(
        reference_dataset, reference_taxonomy
    )
    reference_list = [
        r.product for r in reference.recommend(principal, limit=top_n)
    ]
    n_agents = len(community.dataset.agents)

    table = Table(
        title=f"EX18 — fault rate vs replica coverage and rec agreement (top-{top_n})",
        headers=[
            "fault rate",
            "fetches",
            "retries",
            "breaker trips",
            "degraded",
            "quarantined",
            "coverage",
            "rec overlap",
        ],
    )
    for rate in fault_rates:
        plan = _chaos_plan(rate, seed) if rate > 0 else None
        _, dataset, taxonomy, report = _replicate(community, plan=plan, retry=retry)
        coverage = len(dataset.agents) / n_agents
        recommender = SemanticWebRecommender.from_dataset(dataset, taxonomy)
        recs = [r.product for r in recommender.recommend(principal, limit=top_n)]
        overlap = (
            len(set(recs) & set(reference_list)) / len(reference_list)
            if reference_list
            else 0.0
        )
        table.add_row(
            f"{rate:.2f}",
            report.homepage_fetches + report.weblog_fetches,
            report.retries,
            report.breaker_trips,
            len(report.degraded),
            len(report.quarantined),
            f"{coverage:.3f}",
            f"{overlap:.2f}",
        )
    table.add_note(
        "fault mix per headline rate r: transient r, slow r/2, corrupt r/4, "
        f"site outage r/8; retries={max_retries} with exponential backoff, "
        "per-site circuit breakers, stale-replica fallback"
    )
    table.add_note(
        "coverage = replicated agents / community size; rec overlap vs the "
        "fault-free replica's top list for the seed agent"
    )
    return table
