"""The standing perf trajectory: ``repro bench`` and ``BENCH_scale.json``.

The ROADMAP demands every PR make a hot path measurably faster — which
only means something against a *standing* trajectory with a stable
schema.  This module is that schema's single owner:

* :func:`run_bench` drives the three phases every scale-out PR cares
  about — **build** (community generation + profile packing), **query**
  (hybrid recommendations) and **trust** (a sharded
  :func:`~repro.trust.engine.rank_many` sweep) — across declared
  community sizes, *with tracing always on*, so every wall time in the
  output carries the name of its dominant span (the span name with the
  most self time inside that phase's subtree, computed by
  :func:`repro.obs.profile.profile_trace`).
* :func:`write_bench` / :func:`validate_bench` own the versioned
  on-disk document (schema id :data:`BENCH_SCHEMA`, ``repro-bench/1``).
  Reprolint ``RL010`` flags any ``BENCH_*.json`` writer that bypasses
  this helper, so the trajectory cannot silently fork into ad-hoc
  schemas again.
* ``scripts/check_bench_regression.py`` compares a fresh document
  against the committed baseline with noise-aware thresholds and, on
  failure, prints the dominant-span attribution — the regression names
  a span, the span names a line of code.

Determinism: the driver's span tree is a function of (sizes, seed,
queries, trust_sources) alone — two same-seed runs agree exactly modulo
``duration_ms`` (pinned by the benchtrack tests).  Every timing-derived
field of the document is listed in :data:`MEASUREMENT_FIELDS` and can be
stripped with :func:`strip_bench_measurements` for identity checks.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..core.neighborhood import NeighborhoodFormation
from ..core.profiles import TaxonomyProfileBuilder
from ..core.recommender import ProfileStore, SemanticWebRecommender
from ..datasets.amazon import book_taxonomy_config
from ..datasets.generators import CommunityConfig, generate_community
from ..obs import Tracer, tracing
from ..obs.profile import SpanNode, aggregate_nodes, build_tree, walk_tree
from ..trust.engine import rank_many
from ..trust.graph import TrustGraph

if TYPE_CHECKING:  # pragma: no cover
    from ..datasets.generators import SyntheticCommunity

__all__ = [
    "BENCH_SCHEMA",
    "PHASES",
    "default_sizes",
    "run_bench",
    "strip_bench_measurements",
    "validate_bench",
    "write_bench",
]

#: The versioned schema id stamped into every document this module writes.
BENCH_SCHEMA = "repro-bench/1"

#: The three phases of one size's measurement, in execution order.
PHASES = ("build", "query", "trust")

#: Document fields that carry measurement (clock-derived, run-to-run
#: noisy) rather than identity; :func:`strip_bench_measurements` removes
#: exactly these.
MEASUREMENT_FIELDS = ("wall_ms", "dominant_self_ms")

#: Span names of the driver's own scaffolding, per phase.
_PHASE_SPAN = {phase: f"bench.{phase}" for phase in PHASES}


def default_sizes(smoke: bool | None = None) -> tuple[int, ...]:
    """The declared size ladder; ``BENCH_SMOKE=1`` shrinks it for CI."""
    if smoke is None:
        smoke = os.environ.get("BENCH_SMOKE") == "1"
    return (60, 120) if smoke else (100, 200, 400)


def _dominant(phase_node: SpanNode) -> tuple[str, float, int]:
    """``(span name, self ms, span count)`` of the hottest name in a subtree.

    The phase's own span competes too: its self time is the
    un-instrumented remainder of the phase, and when *that* dominates,
    the attribution honestly says so instead of blaming the largest
    instrumented child.
    """
    subtree = walk_tree([phase_node])
    top = aggregate_nodes(subtree)[0]
    return top.name, round(top.self_ms, 3), len(subtree)


def run_bench(
    sizes: tuple[int, ...] | None = None,
    seed: int = 42,
    queries: int = 5,
    trust_sources: int = 8,
    smoke: bool | None = None,
    memory: bool = False,
) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Run the build/query/trust ladder; returns ``(document, trace records)``.

    Tracing is not optional here: the document's attribution fields are
    computed *from* the span tree, so the driver always binds its own
    :class:`~repro.obs.Tracer` (``memory=True`` adds per-span
    ``mem_delta_kb`` attribution at a small tracemalloc cost).
    """
    if smoke is None:
        smoke = os.environ.get("BENCH_SMOKE") == "1"
    if sizes is None:
        sizes = default_sizes(smoke)
    if not sizes or list(sizes) != sorted(set(sizes)):
        raise ValueError(f"sizes must be strictly ascending and non-empty: {sizes!r}")
    tracer = Tracer(memory=memory)
    with tracing(tracer), tracer.span(
        "bench.run", seed=seed, sizes=list(sizes), queries=queries,
        trust_sources=trust_sources,
    ):
        for n_agents in sizes:
            with tracer.span("bench.size", agents=n_agents):
                _run_one_size(tracer, n_agents, seed, queries, trust_sources)
    records = tracer.records()
    document = _document_from_trace(
        records, seed=seed, queries=queries, trust_sources=trust_sources, smoke=smoke
    )
    return document, records


def _run_one_size(
    tracer: Tracer, n_agents: int, seed: int, queries: int, trust_sources: int
) -> None:
    """One rung of the ladder: the three phases on one community size."""
    community: SyntheticCommunity
    with tracer.span(_PHASE_SPAN["build"], agents=n_agents):
        config = CommunityConfig(
            n_agents=n_agents,
            n_products=n_agents * 2,
            n_clusters=8,
            seed=seed,
            taxonomy=book_taxonomy_config(target_topics=600, seed=seed),
        )
        with tracer.span("community.generate", agents=n_agents, seed=seed):
            community = generate_community(config)
        store = ProfileStore(
            community.dataset, TaxonomyProfileBuilder(community.taxonomy)
        )
        with tracer.span("profiles.pack", agents=n_agents):
            store.matrix()  # pack the profile matrix inside the timed phase
        with tracer.span("trust.graph_build", agents=n_agents):
            graph = TrustGraph.from_dataset(community.dataset)

    recommender = SemanticWebRecommender(
        dataset=community.dataset,
        graph=graph,
        profiles=store,
        formation=NeighborhoodFormation(engine="auto"),
        engine="auto",
    )
    agents = sorted(community.dataset.agents)
    with tracer.span(_PHASE_SPAN["query"], agents=n_agents, queries=queries):
        for agent in agents[:queries]:
            recommender.recommend(agent, limit=10)

    step = max(1, len(agents) // trust_sources)
    sources = [agents[i * step] for i in range(min(trust_sources, len(agents)))]
    with tracer.span(_PHASE_SPAN["trust"], agents=n_agents, sources=len(sources)):
        rank_many(graph, sources, engine="auto")


def _document_from_trace(
    records: list[dict[str, Any]],
    *,
    seed: int,
    queries: int,
    trust_sources: int,
    smoke: bool,
) -> dict[str, Any]:
    """Fold the driver's span tree into one ``repro-bench/1`` document."""
    roots = build_tree(records)
    size_nodes = [
        node for node in walk_tree(roots) if node.name == "bench.size"
    ]
    size_records: list[dict[str, Any]] = []
    phase_names = {span: phase for phase, span in _PHASE_SPAN.items()}
    for size_node in size_nodes:
        phases: dict[str, Any] = {}
        for child in size_node.children:
            phase = phase_names.get(child.name)
            if phase is None:
                continue
            name, self_ms, span_count = _dominant(child)
            phases[phase] = {
                "wall_ms": round(child.duration_ms, 3),
                "dominant_span": name,
                "dominant_self_ms": self_ms,
                "spans": span_count,
            }
        size_records.append(
            {"agents": int(size_node.record["attrs"]["agents"]), "phases": phases}
        )
    return {
        "schema": BENCH_SCHEMA,
        "smoke": smoke,
        "seed": seed,
        "queries": queries,
        "trust_sources": trust_sources,
        "sizes": size_records,
    }


def validate_bench(document: Any) -> list[str]:
    """Check a ``repro-bench/1`` document; returns error strings.

    Like :func:`repro.obs.trace.validate_trace`, every finding is
    collected — the regression gate and the CI smoke job print them all.
    """
    errors: list[str] = []
    if not isinstance(document, dict):
        return ["document is not an object"]
    if document.get("schema") != BENCH_SCHEMA:
        errors.append(
            f"schema {document.get('schema')!r} != expected {BENCH_SCHEMA!r}"
        )
    for key in ("smoke",):
        if not isinstance(document.get(key), bool):
            errors.append(f"{key} must be a boolean, got {document.get(key)!r}")
    for key in ("seed", "queries", "trust_sources"):
        value = document.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            errors.append(f"{key} must be an integer, got {value!r}")
    sizes = document.get("sizes")
    if not isinstance(sizes, list) or not sizes:
        errors.append("sizes must be a non-empty array")
        return errors
    previous = 0
    for index, entry in enumerate(sizes, start=1):
        where = f"sizes[{index}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: not an object")
            continue
        agents = entry.get("agents")
        if not isinstance(agents, int) or isinstance(agents, bool) or agents < 1:
            errors.append(f"{where}: agents {agents!r} is not a positive integer")
        elif agents <= previous:
            errors.append(f"{where}: agents {agents} out of ascending order")
        else:
            previous = agents
        phases = entry.get("phases")
        if not isinstance(phases, dict):
            errors.append(f"{where}: phases must be an object")
            continue
        if sorted(phases) != sorted(PHASES):
            errors.append(
                f"{where}: phases {sorted(phases)} != expected {sorted(PHASES)}"
            )
        for phase, timing in sorted(phases.items()):
            spot = f"{where}.{phase}"
            if not isinstance(timing, dict):
                errors.append(f"{spot}: not an object")
                continue
            for key in ("wall_ms", "dominant_self_ms"):
                value = timing.get(key)
                if isinstance(value, bool) or not isinstance(value, (int, float)) or value < 0:
                    errors.append(f"{spot}: {key} {value!r} must be a non-negative number")
            name = timing.get("dominant_span")
            if not isinstance(name, str) or not name:
                errors.append(f"{spot}: dominant_span must be a non-empty string")
            count = timing.get("spans")
            if not isinstance(count, int) or isinstance(count, bool) or count < 1:
                errors.append(f"{spot}: spans {count!r} must be a positive integer")
    return errors


def write_bench(document: dict[str, Any], path: str | Path) -> Path:
    """Write a validated ``repro-bench/1`` document — the one sanctioned
    ``BENCH_*.json`` writer (reprolint ``RL010``)."""
    errors = validate_bench(document)
    if errors:
        raise ValueError(
            "refusing to write an invalid bench document:\n  " + "\n  ".join(errors)
        )
    target = Path(path)
    target.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target


def strip_bench_measurements(document: dict[str, Any]) -> dict[str, Any]:
    """The document minus clock-derived fields — the deterministic remainder.

    Removes :data:`MEASUREMENT_FIELDS` from every phase timing; what
    stays (sizes, phases, span counts, dominant span *names* on a quiet
    machine) is what two same-seed runs are expected to agree on.
    ``dominant_span`` is kept: it is timing-derived in principle, but
    the phases are designed so one span dominates by a wide margin —
    a *changed* dominant span is signal, not noise.
    """
    projected = json.loads(json.dumps(document))
    for entry in projected.get("sizes", []):
        for timing in entry.get("phases", {}).values():
            for key in MEASUREMENT_FIELDS:
                timing.pop(key, None)
    return dict(projected)
