"""Evaluation substrate: metrics, protocol, attacks, experiment suite."""

from .attacks import (
    ProfileCopyAttack,
    SybilRegion,
    inject_profile_copy_attack,
    inject_sybil_region,
)
from .dynamics import (
    AgentChurn,
    ColdStartWave,
    EpochSnapshot,
    EpochState,
    EpochTruth,
    InterestDrift,
    PopulationEvent,
    SybilRingGrowth,
    Timeline,
    TrustSpamCampaign,
    copy_dataset,
)
from .metrics import (
    catalog_coverage,
    f1_score,
    hit_rate,
    kendall_tau,
    mean,
    mean_absolute_error,
    precision_at,
    recall_at,
    spearman_rho,
    standard_error,
    stdev,
)
from .protocol import (
    HoldoutSplit,
    QualityReport,
    Table,
    evaluate_recommender,
    holdout_split,
    kfold_splits,
)
from .significance import (
    ComparisonResult,
    SeriesComparison,
    bootstrap_confidence_interval,
    compare_epoch_series,
    compare_recommenders,
    holm_bonferroni,
    paired_permutation_test,
)

# The experiment suites are imported lazily by callers (repro.cli, the
# benches) to keep `import repro.evaluation` light; see
# repro.evaluation.experiments and repro.evaluation.experiments_ext.

__all__ = [
    "AgentChurn",
    "ColdStartWave",
    "ComparisonResult",
    "EpochSnapshot",
    "EpochState",
    "EpochTruth",
    "HoldoutSplit",
    "InterestDrift",
    "PopulationEvent",
    "ProfileCopyAttack",
    "QualityReport",
    "SeriesComparison",
    "SybilRegion",
    "SybilRingGrowth",
    "Table",
    "Timeline",
    "TrustSpamCampaign",
    "bootstrap_confidence_interval",
    "catalog_coverage",
    "compare_epoch_series",
    "compare_recommenders",
    "copy_dataset",
    "evaluate_recommender",
    "f1_score",
    "hit_rate",
    "holdout_split",
    "holm_bonferroni",
    "inject_profile_copy_attack",
    "inject_sybil_region",
    "kendall_tau",
    "kfold_splits",
    "mean",
    "mean_absolute_error",
    "paired_permutation_test",
    "precision_at",
    "recall_at",
    "spearman_rho",
    "standard_error",
    "stdev",
]
