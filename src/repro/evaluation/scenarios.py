"""EX20–EX23 — population-dynamics scenarios over evolving communities.

The EX1–EX19 suite scores frozen snapshots; these four experiments run
the :mod:`~repro.evaluation.dynamics` timelines and sweep one event
intensity each, scoring :class:`~repro.core.recommender
.SemanticWebRecommender` (hybrid trust + taxonomy) against
:class:`~repro.core.recommender.PureCFRecommender` per epoch:

* **EX20 churn** — members leave and join at rising rates; accuracy
  must degrade smoothly, not collapse (EX18's acceptance style).
* **EX21 cold start** — growing newcomer waves (Pitsilis & Knapskog's
  sparsity regime); established-user accuracy must hold while newcomer
  coverage is reported per method.
* **EX22 evolving sybil attack** — a ring accretes identities, forged
  profiles, and attack edges epoch over epoch (§2's "spoofing and
  identity forging"); Appleseed admission and pushed-product
  contamination must stay bounded by the bridge count.
* **EX23 interest drift** — cluster migration erodes the taxonomy
  homophily the similarity measure leans on.

Per-epoch hybrid-vs-CF comparisons feed
:func:`~repro.evaluation.significance.compare_epoch_series`
(bootstrap + permutation per epoch, Holm–Bonferroni across epochs), so
"trust degrades gracefully" is a tested statistical claim.  Everything
is deterministic given the seed; ``runner=`` fans per-user scoring out
exactly like :func:`~repro.evaluation.protocol.evaluate_recommender`
(submission-order merge, byte-identical to serial).  Setting
``EX2x_SMOKE=1`` shrinks the default sizes for CI smoke runs.
"""

from __future__ import annotations

import os
import random
from collections.abc import Sequence
from typing import TYPE_CHECKING

from ..core.models import Dataset
from ..core.neighborhood import NeighborhoodFormation
from ..core.profiles import TaxonomyProfileBuilder
from ..core.recommender import (
    ProfileStore,
    PureCFRecommender,
    Recommender,
    SemanticWebRecommender,
)
from ..core.taxonomy import Taxonomy
from ..datasets.generators import SyntheticCommunity
from ..obs import get_metrics, get_tracer
from ..perf.parallel import derive_seed, split_evenly
from ..trust.appleseed import Appleseed
from ..trust.graph import TrustGraph
from .dynamics import (
    AgentChurn,
    ColdStartWave,
    EpochSnapshot,
    InterestDrift,
    PopulationEvent,
    SybilRingGrowth,
    Timeline,
    TrustSpamCampaign,
)
from .experiments import default_community
from .metrics import mean
from .protocol import HoldoutSplit, Table, _score_user_chunk, holdout_split
from .significance import SeriesComparison, compare_epoch_series

if TYPE_CHECKING:  # pragma: no cover
    from ..perf.parallel import ParallelExperimentRunner

__all__ = [
    "run_ex20_churn",
    "run_ex21_coldstart",
    "run_ex22_evolving_sybil",
    "run_ex23_drift",
    "smooth_degradation",
]


def _smoke() -> bool:
    """Whether the shared EX20–EX23 smoke mode is active."""
    return os.environ.get("EX2x_SMOKE") == "1"


def smooth_degradation(values: Sequence[float], tolerance: float = 0.02) -> bool:
    """True when *values* never rise by more than *tolerance* per step.

    The EX18-style acceptance shape for an accuracy column swept over
    rising adversity: monotone decline within a noise tolerance.  (The
    check is on increases — genuine decline of any size is fine.)
    """
    return all(b <= a + tolerance for a, b in zip(values, values[1:]))


def _scenario_community(seed: int) -> SyntheticCommunity:
    """The default community for a scenario, sized by smoke mode."""
    if _smoke():
        return default_community(seed=seed, n_agents=80, n_products=160)
    return default_community(seed=seed, n_agents=120, n_products=240)


def _build_methods(
    train: Dataset, taxonomy: Taxonomy
) -> tuple[SemanticWebRecommender, PureCFRecommender]:
    """The hybrid-vs-CF pair every scenario scores, over one train set."""
    store = ProfileStore(train, TaxonomyProfileBuilder(taxonomy))
    hybrid = SemanticWebRecommender(
        dataset=train,
        graph=TrustGraph.from_dataset(train),
        profiles=store,
        formation=NeighborhoodFormation(),
    )
    cf = PureCFRecommender(dataset=train, profiles=store, representation="taxonomy")
    return hybrid, cf


def _honest_split(
    dataset: Dataset,
    exclude: frozenset[str],
    per_user: int,
    min_ratings: int,
    max_users: int | None,
    seed: int,
) -> HoldoutSplit:
    """A holdout split whose test users avoid *exclude* (e.g. sybils).

    The underlying split withholds ratings from every qualifying user;
    test users are then filtered to honest agents and capped by a
    seeded shuffle, so sybil accounts can neither occupy the test-user
    budget nor pollute the accuracy average.
    """
    split = holdout_split(
        dataset, per_user=per_user, min_ratings=min_ratings, max_users=None, seed=seed
    )
    honest = [u for u in split.test_users if u not in exclude]
    rng = random.Random(f"{seed}:select")
    rng.shuffle(honest)
    if max_users is not None:
        honest = honest[:max_users]
    return HoldoutSplit(
        train=split.train,
        held_out={u: split.held_out[u] for u in sorted(honest)},
    )


def _per_user_precision(
    recommender: Recommender,
    split: HoldoutSplit,
    top_n: int,
    runner: "ParallelExperimentRunner | None",
) -> list[float]:
    """Per-user precision@N in ``split.test_users`` order.

    The parallel path mirrors :func:`~repro.evaluation.protocol
    .evaluate_recommender`: contiguous user chunks merged in submission
    order, so any worker count yields the serial sequence.
    """
    users = split.test_users
    if runner is None:
        triples = _score_user_chunk((recommender, split.held_out, users, top_n))
    else:
        chunks = split_evenly(users, runner.effective_workers())
        tasks = [
            (recommender, {u: split.held_out[u] for u in chunk}, chunk, top_n)
            for chunk in chunks
        ]
        triples = [
            triple
            for chunk_triples in runner.map(_score_user_chunk, tasks)
            for triple in chunk_triples
        ]
    return [t[0] for t in triples]


def _epoch_series(
    snapshots: Sequence[EpochSnapshot],
    taxonomy: Taxonomy,
    per_user: int,
    min_ratings: int,
    max_users: int | None,
    top_n: int,
    seed: int,
    runner: "ParallelExperimentRunner | None",
) -> tuple[list[list[float]], list[list[float]]]:
    """Per-epoch (hybrid, CF) per-user precision sequences."""
    hybrid_series: list[list[float]] = []
    cf_series: list[list[float]] = []
    tracer = get_tracer()
    for snapshot in snapshots:
        with tracer.span("scenario.score_epoch", epoch=snapshot.epoch):
            split = _honest_split(
                snapshot.dataset,
                exclude=snapshot.truth.sybils,
                per_user=per_user,
                min_ratings=min_ratings,
                max_users=max_users,
                seed=derive_seed(seed, snapshot.epoch),
            )
            hybrid, cf = _build_methods(split.train, taxonomy)
            hybrid_series.append(_per_user_precision(hybrid, split, top_n, runner))
            cf_series.append(_per_user_precision(cf, split, top_n, runner))
    return hybrid_series, cf_series


def _series_cells(comparison: SeriesComparison) -> tuple[str, str, str]:
    """The shared significance columns: Δ, pooled p, Holm-significant."""
    return (
        f"{comparison.pooled.mean_difference:+.4f}",
        f"{comparison.pooled.p_value:.4f}",
        f"{comparison.n_significant}/{len(comparison.epochs)}",
    )


# ---------------------------------------------------------------------------
# EX20 — churn
# ---------------------------------------------------------------------------


def run_ex20_churn(
    community: SyntheticCommunity | None = None,
    churn_rates: Sequence[float] | None = None,
    n_epochs: int | None = None,
    seed: int = 60,
    top_n: int = 10,
    per_user: int = 3,
    min_ratings: int = 8,
    max_users: int | None = None,
    rounds: int | None = None,
    runner: "ParallelExperimentRunner | None" = None,
) -> Table:
    """Hybrid vs CF accuracy as membership churn intensifies."""
    smoke = _smoke()
    community = community or _scenario_community(seed)
    churn_rates = tuple(churn_rates or ((0.0, 0.1) if smoke else (0.0, 0.05, 0.1, 0.2)))
    n_epochs = n_epochs or (2 if smoke else 4)
    max_users = max_users if max_users is not None else (10 if smoke else 14)
    rounds = rounds or (200 if smoke else 1000)

    table = Table(
        title=f"EX20 — membership churn vs recommendation accuracy (top-{top_n})",
        headers=[
            "churn rate",
            "epochs",
            "final agents",
            "hybrid p@N",
            "CF p@N",
            "Δ pooled",
            "p pooled",
            "sig epochs",
        ],
    )
    for rate in churn_rates:
        events: list[PopulationEvent] = [
            AgentChurn(leave_rate=rate, join_rate=rate)
        ]
        snapshots = Timeline(
            community=community, events=events, n_epochs=n_epochs, seed=seed
        ).run()
        hybrid_series, cf_series = _epoch_series(
            snapshots, community.taxonomy, per_user, min_ratings, max_users,
            top_n, seed, runner,
        )
        comparison = compare_epoch_series(
            hybrid_series, cf_series, rounds=rounds, seed=seed
        )
        delta, pooled_p, significant = _series_cells(comparison)
        table.add_row(
            f"{rate:.2f}",
            n_epochs,
            len(snapshots[-1].dataset.agents),
            f"{mean([mean(s) for s in hybrid_series]):.4f}",
            f"{mean([mean(s) for s in cf_series]):.4f}",
            delta,
            pooled_p,
            significant,
        )
    table.add_note(
        "acceptance: hybrid p@N declines monotonically within tolerance as "
        "the churn rate rises (smooth degradation, no collapse)"
    )
    table.add_note(
        "Δ/p pooled: hybrid − CF over all per-user differences of the run; "
        "sig epochs: Holm–Bonferroni-significant epochs at 0.05"
    )
    return table


# ---------------------------------------------------------------------------
# EX21 — cold-start waves
# ---------------------------------------------------------------------------


def _newcomer_coverage(
    recommender: Recommender, newcomers: Sequence[str], top_n: int
) -> float:
    """Fraction of *newcomers* that receive a non-empty top-N list."""
    if not newcomers:
        return 0.0
    served = sum(
        1 for uri in newcomers if recommender.recommend(uri, limit=top_n)
    )
    return served / len(newcomers)


def run_ex21_coldstart(
    community: SyntheticCommunity | None = None,
    wave_sizes: Sequence[int] | None = None,
    n_epochs: int | None = None,
    seed: int = 61,
    top_n: int = 10,
    per_user: int = 3,
    min_ratings: int = 8,
    max_users: int | None = None,
    rounds: int | None = None,
    runner: "ParallelExperimentRunner | None" = None,
) -> Table:
    """Established-user accuracy and newcomer coverage under influx."""
    smoke = _smoke()
    community = community or _scenario_community(seed)
    wave_sizes = tuple(wave_sizes or ((0, 6) if smoke else (0, 5, 10, 20)))
    n_epochs = n_epochs or (2 if smoke else 4)
    max_users = max_users if max_users is not None else (10 if smoke else 14)
    rounds = rounds or (200 if smoke else 1000)

    table = Table(
        title=f"EX21 — cold-start waves vs accuracy and coverage (top-{top_n})",
        headers=[
            "wave size",
            "epochs",
            "newcomers",
            "hybrid p@N",
            "CF p@N",
            "hybrid coverage",
            "CF coverage",
            "p pooled",
        ],
    )
    for wave in wave_sizes:
        events: list[PopulationEvent] = [ColdStartWave(wave_size=wave)]
        snapshots = Timeline(
            community=community, events=events, n_epochs=n_epochs, seed=seed
        ).run()
        hybrid_series, cf_series = _epoch_series(
            snapshots, community.taxonomy, per_user, min_ratings, max_users,
            top_n, seed, runner,
        )
        comparison = compare_epoch_series(
            hybrid_series, cf_series, rounds=rounds, seed=seed
        )
        # Coverage over every newcomer alive at the final epoch.
        final = snapshots[-1]
        newcomers = sorted(
            uri
            for snapshot in snapshots
            for uri in snapshot.truth.newcomers
            if uri in final.dataset.agents
        )
        hybrid, cf = _build_methods(final.dataset, community.taxonomy)
        table.add_row(
            wave,
            n_epochs,
            len(newcomers),
            f"{mean([mean(s) for s in hybrid_series]):.4f}",
            f"{mean([mean(s) for s in cf_series]):.4f}",
            f"{_newcomer_coverage(hybrid, newcomers, top_n):.2f}",
            f"{_newcomer_coverage(cf, newcomers, top_n):.2f}",
            f"{comparison.pooled.p_value:.4f}",
        )
    table.add_note(
        "acceptance: established-user hybrid p@N holds within tolerance as "
        "waves grow; coverage = fraction of newcomers with a non-empty "
        "top-N list at the final epoch"
    )
    return table


# ---------------------------------------------------------------------------
# EX22 — evolving sybil attack
# ---------------------------------------------------------------------------


def run_ex22_evolving_sybil(
    community: SyntheticCommunity | None = None,
    bridge_rates: Sequence[int] | None = None,
    n_epochs: int | None = None,
    ring_growth: int | None = None,
    seed: int = 62,
    top_n: int = 10,
    top_k: int = 20,
    per_user: int = 3,
    min_ratings: int = 8,
    max_users: int | None = None,
    runner: "ParallelExperimentRunner | None" = None,
    engine: str = "auto",
) -> Table:
    """A sybil ring accreting identities, forged profiles and bridges.

    For each bridge intensity the ring grows every epoch (plus a trust
    spam campaign compromising honest vouchers when bridges flow at
    all); the table reports final-epoch Appleseed admission, pushed-
    product contamination of the victim's top-N for hybrid vs CF, and
    honest-user accuracy.
    """
    smoke = _smoke()
    community = community or _scenario_community(seed)
    bridge_rates = tuple(bridge_rates or ((0, 2) if smoke else (0, 1, 2, 4)))
    n_epochs = n_epochs or (2 if smoke else 4)
    ring_growth = ring_growth or (4 if smoke else 6)
    max_users = max_users if max_users is not None else (10 if smoke else 14)
    victim = sorted(community.dataset.agents)[0]
    metrics = get_metrics()

    table = Table(
        title=(
            f"EX22 — evolving sybil attack: admission and contamination "
            f"(top-{top_n}, K={top_k})"
        ),
        headers=[
            "bridges/epoch",
            "sybils",
            "bridges",
            "appleseed sybils@topK",
            "hybrid contamination",
            "CF contamination",
            "hybrid p@N",
        ],
    )
    for bridges in bridge_rates:
        events: list[PopulationEvent] = [
            SybilRingGrowth(
                ring_growth=ring_growth,
                bridges_per_epoch=bridges,
                victim=victim,
            ),
            TrustSpamCampaign(
                compromised_per_epoch=1 if bridges > 0 else 0
            ),
        ]
        snapshots = Timeline(
            community=community, events=events, n_epochs=n_epochs, seed=seed
        ).run()
        hybrid_series, _ = _epoch_series(
            snapshots, community.taxonomy, per_user, min_ratings, max_users,
            top_n, seed, runner,
        )

        hybrid_contamination: list[float] = []
        cf_contamination: list[float] = []
        for snapshot in snapshots:
            pushed = snapshot.truth.pushed_products
            hybrid, cf = _build_methods(snapshot.dataset, community.taxonomy)
            metrics.histogram("dynamics.neighborhood_size").observe(
                len(hybrid.peer_weights(victim))
            )
            for recommender, bucket in (
                (hybrid, hybrid_contamination),
                (cf, cf_contamination),
            ):
                recs = [
                    r.product for r in recommender.recommend(victim, limit=top_n)
                ]
                bucket.append(
                    len(set(recs) & pushed) / top_n if top_n else 0.0
                )

        final = snapshots[-1]
        graph = TrustGraph.from_dataset(final.dataset)
        top = [
            agent
            for agent, _ in Appleseed(engine=engine)
            .compute(graph, victim)
            .top(top_k)
        ]
        admitted = sum(1 for a in top if a in final.truth.sybils) / max(len(top), 1)
        table.add_row(
            bridges,
            len(final.truth.sybils),
            final.truth.bridges,
            f"{admitted:.3f}",
            f"{mean(hybrid_contamination):.3f}",
            f"{mean(cf_contamination):.3f}",
            f"{mean([mean(s) for s in hybrid_series]):.4f}",
        )
    table.add_note(
        "acceptance: with 0 bridges the hybrid admits no sybils and pushes "
        "nothing, while trust-blind CF is contaminated by profile copying "
        "alone; hybrid admission grows smoothly with the bridge budget and "
        "hybrid contamination stays at or below CF's"
    )
    table.add_note(
        "contamination = pushed products in the victim's top-N, averaged "
        "over epochs; admission measured at the final epoch"
    )
    return table


# ---------------------------------------------------------------------------
# EX23 — interest drift
# ---------------------------------------------------------------------------


def run_ex23_drift(
    community: SyntheticCommunity | None = None,
    drift_rates: Sequence[float] | None = None,
    n_epochs: int | None = None,
    seed: int = 63,
    top_n: int = 10,
    per_user: int = 3,
    min_ratings: int = 8,
    max_users: int | None = None,
    rounds: int | None = None,
    runner: "ParallelExperimentRunner | None" = None,
) -> Table:
    """Hybrid vs CF accuracy as interest clusters erode."""
    smoke = _smoke()
    community = community or _scenario_community(seed)
    drift_rates = tuple(
        drift_rates or ((0.0, 0.2) if smoke else (0.0, 0.1, 0.2, 0.4))
    )
    n_epochs = n_epochs or (2 if smoke else 4)
    max_users = max_users if max_users is not None else (10 if smoke else 14)
    rounds = rounds or (200 if smoke else 1000)

    table = Table(
        title=f"EX23 — interest drift vs recommendation accuracy (top-{top_n})",
        headers=[
            "drift rate",
            "epochs",
            "drifted",
            "hybrid p@N",
            "CF p@N",
            "Δ pooled",
            "p pooled",
            "sig epochs",
        ],
    )
    for rate in drift_rates:
        events: list[PopulationEvent] = [InterestDrift(drift_rate=rate)]
        snapshots = Timeline(
            community=community, events=events, n_epochs=n_epochs, seed=seed
        ).run()
        hybrid_series, cf_series = _epoch_series(
            snapshots, community.taxonomy, per_user, min_ratings, max_users,
            top_n, seed, runner,
        )
        comparison = compare_epoch_series(
            hybrid_series, cf_series, rounds=rounds, seed=seed
        )
        delta, pooled_p, significant = _series_cells(comparison)
        drifted = len(
            {uri for snapshot in snapshots for uri in snapshot.truth.drifted}
        )
        table.add_row(
            f"{rate:.2f}",
            n_epochs,
            drifted,
            f"{mean([mean(s) for s in hybrid_series]):.4f}",
            f"{mean([mean(s) for s in cf_series]):.4f}",
            delta,
            pooled_p,
            significant,
        )
    table.add_note(
        "acceptance: hybrid p@N declines monotonically within tolerance as "
        "the drift rate rises — taxonomy profiles absorb migration "
        "gradually rather than collapsing"
    )
    return table
