"""Evaluation protocol: holdout splits, per-user evaluation, result tables.

The protocol follows the standard top-N evaluation for implicit-feedback
recommenders (the paper's data is implicit weblog votes): withhold a few
positively rated products per qualifying user, recommend from the
remaining data, and score the recommendation list against the withheld
items.  Aggregates report mean ± standard error over evaluated users.

:class:`Table` is the shared presentation layer: every experiment and
benchmark renders through it, so EXPERIMENTS.md, test assertions and
bench output all see identical numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core.models import Dataset
from ..core.recommender import Recommender
from .metrics import f1_score, hit_rate, mean, precision_at, recall_at, standard_error

if TYPE_CHECKING:  # pragma: no cover
    from ..perf.parallel import ParallelExperimentRunner

__all__ = [
    "HoldoutSplit",
    "QualityReport",
    "Table",
    "evaluate_recommender",
    "holdout_split",
    "kfold_splits",
]


@dataclass(frozen=True, slots=True)
class HoldoutSplit:
    """A train dataset plus the withheld positive items per test user."""

    train: Dataset
    held_out: dict[str, frozenset[str]]

    @property
    def test_users(self) -> list[str]:
        return sorted(self.held_out)


def holdout_split(
    dataset: Dataset,
    per_user: int = 5,
    min_ratings: int = 10,
    max_users: int | None = None,
    seed: int = 0,
) -> HoldoutSplit:
    """Withhold *per_user* positive ratings from every qualifying user.

    Users qualify with at least *min_ratings* positive ratings, so the
    training half keeps enough signal to recommend from.  *max_users*
    caps the number of test users (cheapest first by URI order after a
    seeded shuffle) to bound experiment cost.  The returned training
    dataset is a modified copy; *dataset* itself is untouched.
    """
    if per_user < 1:
        raise ValueError("per_user must be at least 1")
    if min_ratings <= per_user:
        raise ValueError("min_ratings must exceed per_user")
    rng = random.Random(seed)

    positive: dict[str, list[str]] = {}
    for rating in dataset.iter_ratings():
        if rating.is_positive:
            positive.setdefault(rating.agent, []).append(rating.product)

    qualifying = sorted(a for a, items in positive.items() if len(items) >= min_ratings)
    rng.shuffle(qualifying)
    if max_users is not None:
        qualifying = qualifying[:max_users]

    held_out: dict[str, frozenset[str]] = {}
    train = Dataset(
        agents=dict(dataset.agents),
        products=dict(dataset.products),
        trust=dict(dataset.trust),
        ratings=dict(dataset.ratings),
    )
    for agent in qualifying:
        items = sorted(positive[agent])
        rng.shuffle(items)
        withheld = frozenset(items[:per_user])
        held_out[agent] = withheld
        for product in withheld:
            del train.ratings[(agent, product)]
    return HoldoutSplit(train=train, held_out=held_out)


def kfold_splits(
    dataset: Dataset,
    folds: int = 5,
    min_ratings: int = 10,
    max_users: int | None = None,
    seed: int = 0,
) -> list[HoldoutSplit]:
    """Per-user k-fold cross-validation splits.

    Each qualifying user's positive ratings are partitioned into *folds*
    near-equal parts; split *i* withholds part *i* for every user
    simultaneously.  Every positive rating of a qualifying user is
    therefore withheld exactly once across the returned splits, making
    fold-averaged metrics less sensitive to one lucky holdout draw than
    :func:`holdout_split`.
    """
    if folds < 2:
        raise ValueError("folds must be at least 2")
    if min_ratings < folds:
        raise ValueError("min_ratings must be at least the fold count")
    rng = random.Random(seed)

    positive: dict[str, list[str]] = {}
    for rating in dataset.iter_ratings():
        if rating.is_positive:
            positive.setdefault(rating.agent, []).append(rating.product)
    qualifying = sorted(a for a, items in positive.items() if len(items) >= min_ratings)
    rng.shuffle(qualifying)
    if max_users is not None:
        qualifying = qualifying[:max_users]

    # One fixed shuffled partition per user, shared by all folds.
    partitions: dict[str, list[list[str]]] = {}
    for agent in qualifying:
        items = sorted(positive[agent])
        rng.shuffle(items)
        partitions[agent] = [items[i::folds] for i in range(folds)]

    splits: list[HoldoutSplit] = []
    for fold in range(folds):
        train = Dataset(
            agents=dict(dataset.agents),
            products=dict(dataset.products),
            trust=dict(dataset.trust),
            ratings=dict(dataset.ratings),
        )
        held_out: dict[str, frozenset[str]] = {}
        for agent in qualifying:
            withheld = frozenset(partitions[agent][fold])
            if not withheld:
                continue
            held_out[agent] = withheld
            for product in withheld:
                del train.ratings[(agent, product)]
        splits.append(HoldoutSplit(train=train, held_out=held_out))
    return splits


@dataclass(frozen=True, slots=True)
class QualityReport:
    """Aggregated top-N quality over the test users of one recommender."""

    name: str
    top_n: int
    users: int
    precision: float
    precision_se: float
    recall: float
    recall_se: float
    f1: float
    hit_rate: float

    def as_row(self) -> list[str]:
        return [
            self.name,
            str(self.users),
            f"{self.precision:.4f}±{self.precision_se:.4f}",
            f"{self.recall:.4f}±{self.recall_se:.4f}",
            f"{self.f1:.4f}",
            f"{self.hit_rate:.3f}",
        ]

    @staticmethod
    def headers() -> list[str]:
        return ["method", "users", "precision", "recall", "F1", "hit-rate"]


def _score_user_chunk(
    task: tuple[Recommender, dict[str, frozenset[str]], list[str], int],
) -> list[tuple[float, float, float]]:
    """Worker for parallel evaluation: score one contiguous user chunk.

    Module-level so process pools can pickle it; returns one
    ``(precision, recall, hit)`` triple per user, in chunk order.
    """
    recommender, held_out, users, top_n = task
    triples: list[tuple[float, float, float]] = []
    for agent in users:
        relevant = set(held_out[agent])
        recommended = [
            item.product for item in recommender.recommend(agent, limit=top_n)
        ]
        triples.append(
            (
                precision_at(recommended, relevant),
                recall_at(recommended, relevant),
                hit_rate(recommended, relevant),
            )
        )
    return triples


def evaluate_recommender(
    name: str,
    recommender: Recommender,
    split: HoldoutSplit,
    top_n: int = 10,
    runner: "ParallelExperimentRunner | None" = None,
) -> QualityReport:
    """Score *recommender* on *split* with top-*top_n* lists.

    The recommender must have been built over ``split.train`` — this
    function only drives it and scores the lists.  Passing a *runner*
    fans the per-user scoring out over contiguous user chunks; because
    chunks are merged in submission order, the aggregated report is
    byte-identical to the serial one regardless of worker count.
    """
    users = split.test_users
    if runner is None:
        triples = _score_user_chunk((recommender, split.held_out, users, top_n))
    else:
        from ..perf.parallel import split_evenly

        chunks = split_evenly(users, runner.effective_workers())
        tasks = [
            (recommender, {u: split.held_out[u] for u in chunk}, chunk, top_n)
            for chunk in chunks
        ]
        triples = [
            triple
            for chunk_triples in runner.map(_score_user_chunk, tasks)
            for triple in chunk_triples
        ]
    precisions = [t[0] for t in triples]
    recalls = [t[1] for t in triples]
    hits = [t[2] for t in triples]
    mean_precision = mean(precisions)
    mean_recall = mean(recalls)
    return QualityReport(
        name=name,
        top_n=top_n,
        users=len(split.test_users),
        precision=mean_precision,
        precision_se=standard_error(precisions),
        recall=mean_recall,
        recall_se=standard_error(recalls),
        f1=f1_score(mean_precision, mean_recall),
        hit_rate=mean(hits),
    )


@dataclass
class Table:
    """A minimal aligned-text table for experiment and benchmark output."""

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        row = [str(cell) for cell in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: list[str]) -> str:
            return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

        lines = [self.title, "=" * len(self.title), fmt(self.headers)]
        lines.append("  ".join("-" * w for w in widths))
        lines.extend(fmt(row) for row in self.rows)
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render as a GitHub-flavored Markdown table with title and notes.

        Cell content is pipe-escaped; notes become italicized trailing
        lines.  Used by the EXPERIMENTS.md generator.
        """

        def escape(cell: str) -> str:
            return cell.replace("|", "\\|")

        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(escape(h) for h in self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(escape(c) for c in row) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
