"""Extended experiments: EX12–EX15.

These go beyond the paper's §3 core to cover its open questions and
deployment claims with the machinery this library adds:

* **EX12 — rating prediction MAE** (classic CF task on explicit-rating
  communities): trust-aware weights vs pure-CF weights vs global mean.
* **EX13 — stereotype generation** (§6 future work): do k-means
  stereotypes over taxonomy profiles recover the generator's planted
  interest clusters, and how does the cheap stereotype recommender
  compare?
* **EX14 — ablations** of the design decisions DESIGN.md marks ♦:
  Appleseed backward propagation, nonlinear edge normalization, Eq. 3
  propagation vs flat categories, uniform vs rating-weighted splits.
* **EX15 — weblog mining** (§4): publish ratings as weblog hyperlinks,
  mine them back, and verify the recovered dataset supports the same
  recommendations.
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from typing import TYPE_CHECKING

from ..core.models import Dataset, Product
from ..core.neighborhood import NeighborhoodFormation
from ..core.prediction import RatingPredictor
from ..core.profiles import Profile, TaxonomyProfileBuilder
from ..core.recommender import (
    ProfileStore,
    PureCFRecommender,
    SemanticWebRecommender,
)
from ..core.stereotypes import StereotypeRecommender, cluster_profiles
from ..datasets.amazon import book_taxonomy_config
from ..datasets.generators import CommunityConfig, SyntheticCommunity, generate_community
from ..trust.appleseed import Appleseed
from ..trust.engine import rank_many
from ..trust.graph import TrustGraph
from .metrics import mean
from .protocol import Table, evaluate_recommender, holdout_split

if TYPE_CHECKING:
    from ..perf.parallel import ParallelExperimentRunner

__all__ = [
    "explicit_community",
    "run_ex12_prediction",
    "run_ex13_stereotypes",
    "run_ex14_ablations",
    "run_ex15_weblog_mining",
    "run_ex16_diversification",
    "run_ex17_distrust",
]


def explicit_community(seed: int = 42, n_agents: int = 300) -> SyntheticCommunity:
    """A community with explicit graded ratings (for the MAE task)."""
    config = CommunityConfig(
        n_agents=n_agents,
        n_products=n_agents * 2,
        n_clusters=8,
        seed=seed,
        explicit_ratings=True,
        taxonomy=book_taxonomy_config(target_topics=600, seed=seed),
    )
    return generate_community(config)


# ---------------------------------------------------------------------------
# EX12 — rating prediction MAE
# ---------------------------------------------------------------------------


def _withhold_values(
    dataset: Dataset, per_user: int, min_ratings: int, max_users: int, seed: int
) -> tuple[Dataset, dict[str, dict[str, float]]]:
    """Withhold rating *values* (any sign) for the MAE protocol."""
    rng = random.Random(seed)
    by_agent: dict[str, list[str]] = {}
    for rating in dataset.iter_ratings():
        by_agent.setdefault(rating.agent, []).append(rating.product)
    qualifying = sorted(
        agent for agent, items in by_agent.items() if len(items) >= min_ratings
    )
    rng.shuffle(qualifying)
    qualifying = qualifying[:max_users]
    train = Dataset(
        agents=dict(dataset.agents),
        products=dict(dataset.products),
        trust=dict(dataset.trust),
        ratings=dict(dataset.ratings),
    )
    held: dict[str, dict[str, float]] = {}
    for agent in qualifying:
        items = sorted(by_agent[agent])
        rng.shuffle(items)
        held[agent] = {}
        for product in items[:per_user]:
            held[agent][product] = train.ratings.pop((agent, product)).value
    return train, held


def run_ex12_prediction(
    community: SyntheticCommunity | None = None,
    per_user: int = 5,
    max_users: int = 40,
    seed: int = 37,
) -> Table:
    """MAE of predicted vs withheld explicit ratings, per weight source."""
    community = community or explicit_community()
    train, held = _withhold_values(
        community.dataset, per_user=per_user, min_ratings=12,
        max_users=max_users, seed=seed,
    )
    store = ProfileStore(train, TaxonomyProfileBuilder(community.taxonomy))
    graph = TrustGraph.from_dataset(train)
    hybrid = SemanticWebRecommender(dataset=train, graph=graph, profiles=store)
    pure = PureCFRecommender(dataset=train, profiles=store, neighbors=40)

    global_mean = mean([r.value for r in train.iter_ratings()])
    predictors = [
        ("hybrid weights", RatingPredictor(train, hybrid.peer_weights)),
        ("pure CF weights", RatingPredictor(train, pure.peer_weights)),
    ]

    table = Table(
        title=f"EX12 — rating prediction (leave-{per_user}-values-out)",
        headers=["predictor", "users", "MAE", "coverage"],
    )
    for name, predictor in predictors:
        errors: list[float] = []
        asked = 0
        answered = 0
        for agent, withheld in held.items():
            predictions = predictor.predict_many(agent, sorted(withheld))
            asked += len(withheld)
            answered += len(predictions)
            errors.extend(
                abs(predictions[p] - withheld[p]) for p in predictions
            )
        table.add_row(
            name,
            len(held),
            f"{mean(errors):.4f}" if errors else "n/a",
            f"{answered / asked:.3f}" if asked else "n/a",
        )
    baseline_errors = [
        abs(global_mean - value)
        for withheld in held.values()
        for value in withheld.values()
    ]
    table.add_row("global mean", len(held), f"{mean(baseline_errors):.4f}", "1.000")
    table.add_note(
        "expected shape: both personalized predictors beat the global-mean "
        "baseline; the hybrid covers fewer (trust-bounded) pairs."
    )
    return table


# ---------------------------------------------------------------------------
# EX13 — stereotype generation (§6)
# ---------------------------------------------------------------------------


def _cluster_agreement(
    predicted: dict[str, int], planted: dict[str, int]
) -> float:
    """Mean per-cluster purity of *predicted* against *planted* labels."""
    groups: dict[int, list[str]] = {}
    for agent, label in predicted.items():
        groups.setdefault(label, []).append(agent)
    total = 0
    weighted_purity = 0.0
    for members in groups.values():
        counts: dict[int, int] = {}
        for agent in members:
            truth = planted[agent]
            counts[truth] = counts.get(truth, 0) + 1
        weighted_purity += max(counts.values())
        total += len(members)
    return weighted_purity / total if total else 0.0


def run_ex13_stereotypes(
    community: SyntheticCommunity | None = None,
    top_n: int = 10,
    max_users: int = 30,
    seed: int = 41,
) -> Table:
    """Stereotype recovery (purity vs planted clusters) and rec quality."""
    from .experiments import default_community

    community = community or default_community()
    dataset = community.dataset
    store = ProfileStore(dataset, TaxonomyProfileBuilder(community.taxonomy))
    profiles = {agent: store.profile(agent) for agent in dataset.agents}
    k = community.config.n_clusters

    model = cluster_profiles(profiles, k=k, seed=seed)
    purity = _cluster_agreement(model.membership(), community.membership)
    chance = 1.0 / k

    split = holdout_split(dataset, per_user=5, min_ratings=12, max_users=max_users, seed=seed)
    train_store = ProfileStore(split.train, TaxonomyProfileBuilder(community.taxonomy))
    stereotype_rec = StereotypeRecommender.fit(split.train, train_store, k=k, seed=seed)
    hybrid = SemanticWebRecommender(
        dataset=split.train,
        graph=TrustGraph.from_dataset(split.train),
        profiles=train_store,
    )
    table = Table(
        title=f"EX13 — stereotype generation (k={k})",
        headers=["measure", "value"],
    )
    table.add_row("k-means iterations", model.iterations)
    table.add_row("converged", model.converged)
    table.add_row("cluster purity vs planted", f"{purity:.3f}")
    table.add_row("chance purity", f"{chance:.3f}")
    for name, recommender in (
        ("stereotype rec F1@10", stereotype_rec),
        ("hybrid rec F1@10", hybrid),
    ):
        report = evaluate_recommender(name, recommender, split, top_n=top_n)
        table.add_row(name, f"{report.f1:.4f}")
    table.add_note(
        "§6: taxonomy profiles support 'automated stereotype generation'. "
        "expected shape: purity well above chance; the k-comparison "
        "stereotype recommender is a usable cheap approximation of the "
        "full pipeline."
    )
    return table


# ---------------------------------------------------------------------------
# EX14 — design-decision ablations
# ---------------------------------------------------------------------------


def run_ex14_ablations(
    community: SyntheticCommunity | None = None,
    max_users: int = 30,
    seed: int = 43,
    engine: str = "auto",
) -> Table:
    """Ablate the ♦-marked design decisions of DESIGN.md §4."""
    from .experiments import default_community

    community = community or default_community()
    dataset = community.dataset
    taxonomy = community.taxonomy
    graph = TrustGraph.from_dataset(dataset)
    source = sorted(dataset.agents)[0]

    table = Table(
        title="EX14 — ablations of ♦ design decisions",
        headers=["ablation", "metric", "with", "without"],
    )

    # (a) Appleseed backward propagation: the virtual edges continuously
    # pull energy back toward the source, penalizing long chains — so the
    # rank-weighted mean hop distance of ranked peers must be smaller
    # with them than without.
    injected = 200.0
    with_back = Appleseed(engine=engine).compute(graph, source, injected)
    without_back = Appleseed(backward_propagation=False, engine=engine).compute(
        graph, source, injected
    )
    levels = graph.bfs_levels(source)

    def rank_weighted_distance(ranks: dict[str, float]) -> float:
        total = sum(ranks.values())
        if total <= 0:
            return 0.0
        return sum(r * levels.get(a, 0) for a, r in ranks.items()) / total

    table.add_row(
        "appleseed backward edges",
        "rank-weighted hop distance",
        f"{rank_weighted_distance(with_back.ranks):.3f}",
        f"{rank_weighted_distance(without_back.ranks):.3f}",
    )
    table.add_row(
        "appleseed backward edges",
        "rank mass / injected",
        f"{sum(with_back.ranks.values()) / injected:.3f}",
        f"{sum(without_back.ranks.values()) / injected:.3f}",
    )

    # (b) Nonlinear edge normalization: rank share of strong vs weak edges.
    nonlinear = Appleseed(normalization="nonlinear", engine=engine).compute(
        graph, source, injected
    )
    table.add_row(
        "nonlinear normalization",
        "top-10 rank share",
        f"{sum(r for _, r in nonlinear.top(10)) / max(sum(nonlinear.ranks.values()), 1e-9):.3f}",
        f"{sum(r for _, r in with_back.top(10)) / max(sum(with_back.ranks.values()), 1e-9):.3f}",
    )

    # (c) Eq. 3 propagation vs flat categories, measured on rec quality.
    split = holdout_split(dataset, per_user=5, min_ratings=12, max_users=max_users, seed=seed)
    train = split.train

    def hybrid_with(builder: TaxonomyProfileBuilder) -> SemanticWebRecommender:
        return SemanticWebRecommender(
            dataset=train,
            graph=TrustGraph.from_dataset(train),
            profiles=ProfileStore(train, builder),
            formation=NeighborhoodFormation(),
        )

    eq3 = evaluate_recommender(
        "eq3", hybrid_with(TaxonomyProfileBuilder(taxonomy)), split
    )
    # Flat ablation: propagate nothing by using a taxonomy-less builder
    # approximation — rating-weighted flat categories via similarity on
    # descriptor-only profiles is closest to Sollenborn/Funk.
    from ..core.profiles import flat_category_profile

    class _FlatBuilder(TaxonomyProfileBuilder):
        def build(
            self,
            ratings: Mapping[str, float],
            products: Mapping[str, Product],
        ) -> Profile:
            return flat_category_profile(ratings, products, known_topics=self.taxonomy)

    flat = evaluate_recommender("flat", hybrid_with(_FlatBuilder(taxonomy)), split)
    table.add_row("Eq.3 propagation", "F1@10", f"{eq3.f1:.4f}", f"{flat.f1:.4f}")

    # (d) Uniform vs rating-weighted product split (identical on implicit
    # data by construction; shown for protocol completeness).
    weighted = evaluate_recommender(
        "weighted",
        hybrid_with(TaxonomyProfileBuilder(taxonomy, product_weighting="rating")),
        split,
    )
    table.add_row(
        "uniform product split", "F1@10", f"{eq3.f1:.4f}", f"{weighted.f1:.4f}"
    )
    table.add_note(
        "expected shapes: backward edges pull rank toward the source "
        "(smaller rank-weighted hop distance; part of the mass is "
        "recaptured by the excluded source rank); nonlinear normalization "
        "concentrates rank on strong edges; Eq. 3's decisive advantage "
        "over flat categories is profile overlap (EX5) — top-N quality is "
        "comparable at this scale because the synthetic clusters are "
        "recoverable from leaf descriptors alone; uniform vs "
        "rating-weighted split is identical on implicit data by "
        "construction."
    )
    return table


# ---------------------------------------------------------------------------
# EX16 — topic diversification trade-off (§3.4)
# ---------------------------------------------------------------------------


def run_ex16_diversification(
    community: SyntheticCommunity | None = None,
    thetas: tuple[float, ...] = (0.0, 0.3, 0.5, 0.7, 0.9),
    top_n: int = 10,
    max_users: int = 30,
    seed: int = 47,
) -> Table:
    """Accuracy vs intra-list similarity across diversification factors."""
    from ..core.diversify import TopicDiversifier
    from .experiments import default_community
    from .metrics import precision_at, recall_at

    community = community or default_community()
    taxonomy = community.taxonomy
    split = holdout_split(
        community.dataset, per_user=5, min_ratings=12, max_users=max_users, seed=seed
    )
    train = split.train
    store = ProfileStore(train, TaxonomyProfileBuilder(taxonomy))
    hybrid = SemanticWebRecommender(
        dataset=train,
        graph=TrustGraph.from_dataset(train),
        profiles=store,
    )
    # One candidate list per user, reranked under every theta.
    candidates = {
        agent: hybrid.recommend(agent, limit=top_n * 5)
        for agent in split.test_users
    }

    table = Table(
        title=f"EX16 — topic diversification (top-{top_n})",
        headers=["theta", "precision", "recall", "mean ILS"],
    )
    for theta in thetas:
        diversifier = TopicDiversifier(taxonomy, train.products, theta=theta)
        precisions: list[float] = []
        recalls: list[float] = []
        ils_values: list[float] = []
        for agent in split.test_users:
            reranked = diversifier.rerank(list(candidates[agent]), limit=top_n)
            items = [r.product for r in reranked]
            relevant = set(split.held_out[agent])
            precisions.append(precision_at(items, relevant))
            recalls.append(recall_at(items, relevant))
            ils_values.append(diversifier.ils(reranked))
        table.add_row(
            theta,
            f"{mean(precisions):.4f}",
            f"{mean(recalls):.4f}",
            f"{mean(ils_values):.4f}",
        )
    table.add_note(
        "§3.4: 'incentive for trying new product groups becomes created'. "
        "expected shape: intra-list similarity falls monotonically with "
        "theta while accuracy degrades only gradually — the published "
        "diversification trade-off curve."
    )
    return table


# ---------------------------------------------------------------------------
# EX17 — explicit distrust (§3.1's negative trust values)
# ---------------------------------------------------------------------------


def run_ex17_distrust(
    community: SyntheticCommunity | None = None,
    n_rogues: int = 10,
    accuser_fraction: float = 0.5,
    seed: int = 53,
    engine: str = "auto",
    runner: ParallelExperimentRunner | None = None,
) -> Table:
    """Effect of distrust statements on rogue agents' Appleseed rank.

    Plants ``n_rogues`` well-connected "rogue" agents (they *receive*
    normal positive trust — they fooled part of the community), then has
    a fraction of the community publish explicit distrust statements
    about them (§3.1's negative values).  Measures the rogues' mean
    Appleseed rank share and top-50 membership with distrust ignored vs
    one-step distrust discounting.
    """
    import random as random_module

    from ..core.models import Agent, TrustStatement
    from .experiments import default_community

    community = community or default_community()
    rng = random_module.Random(seed)
    dataset = Dataset(
        agents=dict(community.dataset.agents),
        products=dict(community.dataset.products),
        trust=dict(community.dataset.trust),
        ratings=dict(community.dataset.ratings),
    )
    honest = sorted(community.dataset.agents)

    rogues = [f"http://rogue.example.org/r{i:03d}" for i in range(n_rogues)]
    for i, uri in enumerate(rogues):
        dataset.add_agent(Agent(uri=uri, name=f"Rogue {i}"))
        # Each rogue fooled several honest agents into trusting it.
        for _ in range(6):
            victim = honest[rng.randrange(len(honest))]
            dataset.add_trust(TrustStatement(source=victim, target=uri, value=0.8))
    # A fraction of the community has caught on and publishes distrust.
    accusers = rng.sample(honest, int(len(honest) * accuser_fraction))
    for accuser in accusers:
        for uri in rogues:
            if rng.random() < 0.4:
                dataset.add_trust(
                    TrustStatement(source=accuser, target=uri, value=-0.9)
                )

    graph = TrustGraph.from_dataset(dataset)
    sources = honest[:10]
    table = Table(
        title=f"EX17 — explicit distrust ({n_rogues} rogues, mean over sources)",
        headers=["distrust handling", "rogue rank share", "rogues in top-50"],
    )
    for label, metric in (
        ("ignored", Appleseed()),
        ("one-step discount", Appleseed(distrust_mode="one_step")),
    ):
        shares: list[float] = []
        admissions: list[float] = []
        for result in rank_many(
            graph, sources, metric=metric, engine=engine, runner=runner
        ):
            total = sum(result.ranks.values())
            rogue_mass = sum(result.ranks.get(r, 0.0) for r in rogues)
            shares.append(rogue_mass / total if total else 0.0)
            top = {agent for agent, _ in result.top(50)}
            admissions.append(sum(1 for r in rogues if r in top))
        table.add_row(label, f"{mean(shares):.4f}", f"{mean(admissions):.1f}")
    table.add_note(
        "§3.1 allows negative trust values; §3.2 cites Appleseed's "
        "non-transitive distrust handling.  expected shape: one-step "
        "discounting strictly reduces the rogues' rank share and top-50 "
        "presence relative to ignoring distrust."
    )
    return table


# ---------------------------------------------------------------------------
# EX15 — weblog mining round trip (§4)
# ---------------------------------------------------------------------------


def run_ex15_weblog_mining(
    community: SyntheticCommunity | None = None,
    top_n: int = 10,
) -> Table:
    """Publish ratings as weblogs, mine them back, compare recommendations."""
    from ..web.network import SimulatedWeb
    from ..web.weblog import LinkMiner, publish_weblogs, weblog_uri
    from .experiments import default_community

    community = community or default_community(n_agents=200, n_products=400)
    dataset = community.dataset
    web = SimulatedWeb()
    publish_weblogs(web, dataset)

    # Mine every weblog back into a fresh dataset.
    mined = Dataset(agents=dict(dataset.agents), products=dict(dataset.products))
    for key, statement in dataset.trust.items():
        mined.trust[key] = statement
    miner = LinkMiner(known_products=frozenset(dataset.products))
    exact = 0
    for agent_uri in dataset.agents:
        document = web.fetch(weblog_uri(agent_uri)).body
        recovered = miner.mine(agent_uri, document)
        for rating in recovered:
            mined.add_rating(rating)
        if {(r.product, r.value) for r in recovered} == {
            (p, v) for p, v in dataset.ratings_of(agent_uri).items()
        }:
            exact += 1

    principal = sorted(dataset.agents)[0]
    taxonomy = community.taxonomy
    reference = SemanticWebRecommender.from_dataset(dataset, taxonomy)
    mined_rec = SemanticWebRecommender.from_dataset(mined, taxonomy)
    ref_list = [r.product for r in reference.recommend(principal, top_n)]
    mined_list = [r.product for r in mined_rec.recommend(principal, top_n)]
    overlap = (
        len(set(ref_list) & set(mined_list)) / len(ref_list) if ref_list else 0.0
    )

    table = Table(
        title="EX15 — weblog mining round trip",
        headers=["measure", "value"],
    )
    table.add_row("agents mined exactly", f"{exact}/{len(dataset.agents)}")
    table.add_row(
        "ratings recovered",
        f"{len(mined.ratings)}/{len(dataset.ratings)}",
    )
    table.add_row("unmapped links", len(miner.unmapped))
    table.add_row(f"rec overlap@{top_n} vs reference", f"{overlap:.2f}")
    table.add_note(
        "§4: hyperlinks to catalog product pages 'count as implicit votes'. "
        "expected shape: the weblog channel is lossless for implicit votes, "
        "so mined recommendations equal the reference."
    )
    return table
