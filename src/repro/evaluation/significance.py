"""Statistical significance for recommender comparisons.

The EX6/EX10 tables report mean ± standard error; when two methods sit
close, the question is whether the difference survives the per-user
pairing.  This module provides the two standard dependency-free answers:

* :func:`paired_permutation_test` — exact-in-the-limit test of the null
  "both methods are exchangeable per user": randomly flips the sign of
  each user's per-user difference and counts how often the permuted mean
  difference is at least as extreme as the observed one.
* :func:`bootstrap_confidence_interval` — percentile bootstrap CI of the
  mean per-user difference.

Both operate on *paired* per-user metric sequences (same users, same
order), which is exactly what
:func:`~repro.evaluation.protocol.evaluate_recommender` iterates over.
:func:`paired_scores` drives two recommenders over one split and returns
those sequences.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass

from ..core.recommender import Recommender
from .metrics import mean, precision_at
from .protocol import HoldoutSplit

__all__ = [
    "ComparisonResult",
    "bootstrap_confidence_interval",
    "paired_permutation_test",
    "paired_scores",
]


@dataclass(frozen=True, slots=True)
class ComparisonResult:
    """Outcome of one paired comparison between two methods."""

    mean_difference: float
    p_value: float
    ci_low: float
    ci_high: float
    n_users: int

    @property
    def significant(self) -> bool:
        """Two-sided significance at the conventional 0.05 level."""
        return self.p_value < 0.05


def paired_permutation_test(
    first: Sequence[float],
    second: Sequence[float],
    rounds: int = 10_000,
    seed: int = 0,
) -> float:
    """Two-sided paired sign-flip permutation test; returns the p-value.

    Uses the add-one estimator (never returns exactly 0), which is the
    unbiased choice for Monte Carlo permutation tests.
    """
    if len(first) != len(second):
        raise ValueError("paired sequences must have equal length")
    if rounds < 1:
        raise ValueError("rounds must be at least 1")
    differences = [a - b for a, b in zip(first, second)]
    if not differences:
        return 1.0
    observed = abs(mean(differences))
    if all(d == 0 for d in differences):
        return 1.0
    rng = random.Random(seed)
    hits = 0
    n = len(differences)
    for _ in range(rounds):
        total = 0.0
        for d in differences:
            total += d if rng.random() < 0.5 else -d
        if abs(total / n) >= observed - 1e-15:
            hits += 1
    return (hits + 1) / (rounds + 1)


def bootstrap_confidence_interval(
    first: Sequence[float],
    second: Sequence[float],
    rounds: int = 10_000,
    confidence: float = 0.95,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap CI for the mean paired difference."""
    if len(first) != len(second):
        raise ValueError("paired sequences must have equal length")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie strictly in (0, 1)")
    differences = [a - b for a, b in zip(first, second)]
    if not differences:
        return (0.0, 0.0)
    rng = random.Random(seed)
    n = len(differences)
    means = sorted(
        mean([differences[rng.randrange(n)] for _ in range(n)])
        for _ in range(rounds)
    )
    tail = (1.0 - confidence) / 2.0
    low_index = max(0, min(len(means) - 1, int(tail * rounds)))
    high_index = max(0, min(len(means) - 1, int((1.0 - tail) * rounds) - 1))
    return (means[low_index], means[high_index])


def paired_scores(
    first: Recommender,
    second: Recommender,
    split: HoldoutSplit,
    top_n: int = 10,
) -> tuple[list[float], list[float]]:
    """Per-user precision@N sequences for two recommenders on one split."""
    first_scores: list[float] = []
    second_scores: list[float] = []
    for agent in split.test_users:
        relevant = set(split.held_out[agent])
        first_scores.append(
            precision_at(
                [r.product for r in first.recommend(agent, limit=top_n)], relevant
            )
        )
        second_scores.append(
            precision_at(
                [r.product for r in second.recommend(agent, limit=top_n)], relevant
            )
        )
    return first_scores, second_scores


def compare_recommenders(
    first: Recommender,
    second: Recommender,
    split: HoldoutSplit,
    top_n: int = 10,
    rounds: int = 5_000,
    seed: int = 0,
) -> ComparisonResult:
    """Full paired comparison (difference = first − second)."""
    first_scores, second_scores = paired_scores(first, second, split, top_n)
    differences = [a - b for a, b in zip(first_scores, second_scores)]
    low, high = bootstrap_confidence_interval(
        first_scores, second_scores, rounds=rounds, seed=seed
    )
    return ComparisonResult(
        mean_difference=mean(differences),
        p_value=paired_permutation_test(
            first_scores, second_scores, rounds=rounds, seed=seed
        ),
        ci_low=low,
        ci_high=high,
        n_users=len(differences),
    )
