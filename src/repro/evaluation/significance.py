"""Statistical significance for recommender comparisons.

The EX6/EX10 tables report mean ± standard error; when two methods sit
close, the question is whether the difference survives the per-user
pairing.  This module provides the two standard dependency-free answers:

* :func:`paired_permutation_test` — exact-in-the-limit test of the null
  "both methods are exchangeable per user": randomly flips the sign of
  each user's per-user difference and counts how often the permuted mean
  difference is at least as extreme as the observed one.
* :func:`bootstrap_confidence_interval` — percentile bootstrap CI of the
  mean per-user difference.

Both operate on *paired* per-user metric sequences (same users, same
order), which is exactly what
:func:`~repro.evaluation.protocol.evaluate_recommender` iterates over.
:func:`paired_scores` drives two recommenders over one split and returns
those sequences.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass

from ..core.recommender import Recommender
from ..perf.parallel import derive_seed
from .metrics import mean, precision_at
from .protocol import HoldoutSplit

__all__ = [
    "ComparisonResult",
    "SeriesComparison",
    "bootstrap_confidence_interval",
    "compare_epoch_series",
    "holm_bonferroni",
    "paired_permutation_test",
    "paired_scores",
]


@dataclass(frozen=True, slots=True)
class ComparisonResult:
    """Outcome of one paired comparison between two methods."""

    mean_difference: float
    p_value: float
    ci_low: float
    ci_high: float
    n_users: int

    @property
    def significant(self) -> bool:
        """Two-sided significance at the conventional 0.05 level."""
        return self.p_value < 0.05


def paired_permutation_test(
    first: Sequence[float],
    second: Sequence[float],
    rounds: int = 10_000,
    seed: int = 0,
) -> float:
    """Two-sided paired sign-flip permutation test; returns the p-value.

    Uses the add-one estimator (never returns exactly 0), which is the
    unbiased choice for Monte Carlo permutation tests.
    """
    if len(first) != len(second):
        raise ValueError("paired sequences must have equal length")
    if rounds < 1:
        raise ValueError("rounds must be at least 1")
    differences = [a - b for a, b in zip(first, second)]
    if not differences:
        return 1.0
    observed = abs(mean(differences))
    if all(d == 0 for d in differences):
        return 1.0
    rng = random.Random(seed)
    hits = 0
    n = len(differences)
    for _ in range(rounds):
        total = 0.0
        for d in differences:
            total += d if rng.random() < 0.5 else -d
        if abs(total / n) >= observed - 1e-15:
            hits += 1
    return (hits + 1) / (rounds + 1)


def bootstrap_confidence_interval(
    first: Sequence[float],
    second: Sequence[float],
    rounds: int = 10_000,
    confidence: float = 0.95,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap CI for the mean paired difference."""
    if len(first) != len(second):
        raise ValueError("paired sequences must have equal length")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie strictly in (0, 1)")
    differences = [a - b for a, b in zip(first, second)]
    if not differences:
        return (0.0, 0.0)
    rng = random.Random(seed)
    n = len(differences)
    means = sorted(
        mean([differences[rng.randrange(n)] for _ in range(n)])
        for _ in range(rounds)
    )
    tail = (1.0 - confidence) / 2.0
    low_index = max(0, min(len(means) - 1, int(tail * rounds)))
    high_index = max(0, min(len(means) - 1, int((1.0 - tail) * rounds) - 1))
    return (means[low_index], means[high_index])


def holm_bonferroni(p_values: Sequence[float]) -> list[float]:
    """Holm step-down adjusted p-values for a family of tests.

    The classic sequentially-rejective correction: sort the raw p-values,
    multiply the *k*-th smallest by ``m - k`` (one-based: ``m``, ``m-1``,
    …, ``1``), clamp into ``[0, 1]`` and enforce monotonicity so a later
    hypothesis is never "more significant" than an earlier one.  Controls
    the family-wise error rate at the same level as plain Bonferroni but
    uniformly more powerful.  Returned list matches the input order.
    """
    for p in p_values:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p-value {p!r} outside [0, 1]")
    m = len(p_values)
    order = sorted(range(m), key=lambda i: (p_values[i], i))
    adjusted = [0.0] * m
    running = 0.0
    for rank, index in enumerate(order):
        running = max(running, min(1.0, (m - rank) * p_values[index]))
        adjusted[index] = running
    return adjusted


@dataclass(frozen=True, slots=True)
class SeriesComparison:
    """Outcome of comparing two methods across a whole epoch series.

    ``epochs[i]`` carries the raw per-epoch comparison; because one
    timeline yields one hypothesis test *per epoch*, the per-epoch
    p-values form a family and :attr:`adjusted_p_values` holds their
    Holm–Bonferroni correction.  :attr:`pooled` tests the concatenated
    per-user differences of every epoch at once — the single omnibus
    answer to "does the method win over the run".
    """

    epochs: tuple[ComparisonResult, ...]
    adjusted_p_values: tuple[float, ...]
    pooled: ComparisonResult

    @property
    def n_significant(self) -> int:
        """Epochs still significant at 0.05 after Holm correction."""
        return sum(1 for p in self.adjusted_p_values if p < 0.05)


def compare_epoch_series(
    first: Sequence[Sequence[float]],
    second: Sequence[Sequence[float]],
    rounds: int = 2_000,
    confidence: float = 0.95,
    seed: int = 0,
) -> SeriesComparison:
    """Paired comparison of two per-epoch score series.

    *first* and *second* hold one per-user score sequence per epoch
    (same users, same order within each epoch).  Each epoch gets its own
    permutation test and bootstrap CI (seeded via
    :func:`~repro.perf.parallel.derive_seed` so epochs are independent
    but reproducible); the family of per-epoch p-values is Holm-adjusted
    and the concatenation of all per-user differences feeds the pooled
    omnibus test.
    """
    if len(first) != len(second):
        raise ValueError("series must have one entry per epoch on both sides")
    if not first:
        raise ValueError("series must contain at least one epoch")
    epochs: list[ComparisonResult] = []
    pooled_first: list[float] = []
    pooled_second: list[float] = []
    for index, (a, b) in enumerate(zip(first, second)):
        epoch_seed = derive_seed(seed, index)
        differences = [x - y for x, y in zip(a, b)]
        low, high = bootstrap_confidence_interval(
            a, b, rounds=rounds, confidence=confidence, seed=epoch_seed
        )
        epochs.append(
            ComparisonResult(
                mean_difference=mean(differences) if differences else 0.0,
                p_value=paired_permutation_test(a, b, rounds=rounds, seed=epoch_seed),
                ci_low=low,
                ci_high=high,
                n_users=len(differences),
            )
        )
        pooled_first.extend(a)
        pooled_second.extend(b)
    pooled_differences = [x - y for x, y in zip(pooled_first, pooled_second)]
    pooled_seed = derive_seed(seed, len(epochs))
    pooled_low, pooled_high = bootstrap_confidence_interval(
        pooled_first, pooled_second, rounds=rounds, confidence=confidence, seed=pooled_seed
    )
    pooled = ComparisonResult(
        mean_difference=mean(pooled_differences) if pooled_differences else 0.0,
        p_value=paired_permutation_test(
            pooled_first, pooled_second, rounds=rounds, seed=pooled_seed
        ),
        ci_low=pooled_low,
        ci_high=pooled_high,
        n_users=len(pooled_differences),
    )
    return SeriesComparison(
        epochs=tuple(epochs),
        adjusted_p_values=tuple(holm_bonferroni([e.p_value for e in epochs])),
        pooled=pooled,
    )


def paired_scores(
    first: Recommender,
    second: Recommender,
    split: HoldoutSplit,
    top_n: int = 10,
) -> tuple[list[float], list[float]]:
    """Per-user precision@N sequences for two recommenders on one split."""
    first_scores: list[float] = []
    second_scores: list[float] = []
    for agent in split.test_users:
        relevant = set(split.held_out[agent])
        first_scores.append(
            precision_at(
                [r.product for r in first.recommend(agent, limit=top_n)], relevant
            )
        )
        second_scores.append(
            precision_at(
                [r.product for r in second.recommend(agent, limit=top_n)], relevant
            )
        )
    return first_scores, second_scores


def compare_recommenders(
    first: Recommender,
    second: Recommender,
    split: HoldoutSplit,
    top_n: int = 10,
    rounds: int = 5_000,
    seed: int = 0,
) -> ComparisonResult:
    """Full paired comparison (difference = first − second)."""
    first_scores, second_scores = paired_scores(first, second, split, top_n)
    differences = [a - b for a, b in zip(first_scores, second_scores)]
    low, high = bootstrap_confidence_interval(
        first_scores, second_scores, rounds=rounds, seed=seed
    )
    return ComparisonResult(
        mean_difference=mean(differences),
        p_value=paired_permutation_test(
            first_scores, second_scores, rounds=rounds, seed=seed
        ),
        ci_low=low,
        ci_high=high,
        n_users=len(differences),
    )
