"""The "All Consuming scale" preset (§4.1).

The paper mined "approximately 9,100 users, their trust relationships and
implicit product ratings" from All Consuming and Advogato, plus Amazon
categorization data for 9,953 books.  This module pins those numbers as a
named configuration so experiments can run at published scale, and offers
a ``scale`` knob because the full community is expensive for tight test
loops (scale=0.05 keeps the same shape at ~455 agents).
"""

from __future__ import annotations

from .amazon import book_taxonomy_config
from .generators import CommunityConfig, SyntheticCommunity, generate_community

__all__ = [
    "ALLCONSUMING_AGENTS",
    "ALLCONSUMING_BOOKS",
    "allconsuming_config",
    "generate_allconsuming",
]

#: Community sizes reported in §4.1.
ALLCONSUMING_AGENTS = 9_100
ALLCONSUMING_BOOKS = 9_953

#: Amazon's book taxonomy size reported in §4 ("more than 20,000 topics").
AMAZON_BOOK_TOPICS = 20_000


def allconsuming_config(scale: float = 1.0, seed: int = 42) -> CommunityConfig:
    """A :class:`CommunityConfig` matching the §4.1 crawl, scaled by *scale*.

    The taxonomy scales with the square root of *scale* (topic coverage
    shrinks slower than community size, as it would in a real crawl) and
    is floored at 200 topics so profile propagation stays meaningful.
    """
    if not 0.0 < scale <= 4.0:
        raise ValueError("scale must lie in (0, 4]")
    n_agents = max(10, int(round(ALLCONSUMING_AGENTS * scale)))
    n_books = max(20, int(round(ALLCONSUMING_BOOKS * scale)))
    n_topics = max(200, int(round(AMAZON_BOOK_TOPICS * scale**0.5)))
    return CommunityConfig(
        n_agents=n_agents,
        n_products=n_books,
        n_clusters=max(4, int(round(12 * scale**0.5))),
        seed=seed,
        taxonomy=book_taxonomy_config(target_topics=n_topics, seed=seed),
        # All Consuming ratings are implicit weblog votes.
        explicit_ratings=False,
        interest_fidelity=0.8,
        trust_homophily=0.75,
    )


def generate_allconsuming(
    scale: float = 1.0, seed: int = 42
) -> SyntheticCommunity:
    """Generate the All Consuming-scale community (deterministic per seed)."""
    return generate_community(allconsuming_config(scale=scale, seed=seed))
