"""Synthetic product taxonomies standing in for Amazon's (§4).

The paper relies on Amazon's book taxonomy — "extensive, fine-grained and
deeply-nested … more than 20,000 topics" — and contrasts it with the DVD
taxonomy, which "contains more topics than its book counterpart, though
being less deep" (§6).  The real taxonomies are proprietary, so this
module generates random taxonomies whose *shape* (size, depth, branching)
is explicitly controlled, plus presets mimicking the two shapes the paper
discusses.  Algorithms under test depend only on shape, sibling counts and
descriptor multiplicity, all of which are preserved.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.models import Product
from ..core.taxonomy import Taxonomy

__all__ = [
    "TaxonomyConfig",
    "assign_descriptors",
    "book_taxonomy_config",
    "dvd_taxonomy_config",
    "generate_products",
    "generate_taxonomy",
]


@dataclass(frozen=True, slots=True)
class TaxonomyConfig:
    """Shape parameters for a random taxonomy.

    The tree grows level by level: every node at depth < ``max_depth``
    receives between ``min_children`` and ``max_children`` children with
    probability ``expand_probability`` (leaves occur where expansion does
    not fire or the depth cap is hit); growth stops early once
    ``target_topics`` is reached.
    """

    target_topics: int = 1000
    max_depth: int = 7
    min_children: int = 2
    max_children: int = 6
    expand_probability: float = 0.6
    root_label: str = "Books"
    seed: int = 42

    def __post_init__(self) -> None:
        if self.target_topics < 1:
            raise ValueError("target_topics must be at least 1")
        if self.max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if not 1 <= self.min_children <= self.max_children:
            raise ValueError("require 1 <= min_children <= max_children")
        if not 0.0 < self.expand_probability <= 1.0:
            raise ValueError("expand_probability must lie in (0, 1]")


def book_taxonomy_config(
    target_topics: int = 1000, seed: int = 42
) -> TaxonomyConfig:
    """Deep-narrow shape: Amazon's book taxonomy (default scaled to 1k).

    Pass ``target_topics=20000`` for the full published scale.
    """
    return TaxonomyConfig(
        target_topics=target_topics,
        max_depth=8,
        min_children=2,
        max_children=5,
        expand_probability=0.65,
        root_label="Books",
        seed=seed,
    )


def dvd_taxonomy_config(
    target_topics: int = 1200, seed: int = 42
) -> TaxonomyConfig:
    """Broad-shallow shape: Amazon's DVD taxonomy (§6: more topics, less deep)."""
    return TaxonomyConfig(
        target_topics=target_topics,
        max_depth=4,
        min_children=6,
        max_children=14,
        expand_probability=0.75,
        root_label="DVD",
        seed=seed,
    )


def generate_taxonomy(config: TaxonomyConfig) -> Taxonomy:
    """Generate a random taxonomy with the given shape (deterministic per seed).

    Growth is breadth-first so truncation at ``target_topics`` never
    leaves a level half-expanded more than once, keeping the shape
    statistics close to the configured ones.
    """
    rng = random.Random(config.seed)
    root = config.root_label
    taxonomy = Taxonomy(root, config.root_label)
    frontier: list[str] = [root]
    counter = 0
    while frontier and len(taxonomy) < config.target_topics:
        next_frontier: list[str] = []
        for node in frontier:
            if len(taxonomy) >= config.target_topics:
                break
            depth = taxonomy.depth(node)
            if depth >= config.max_depth:
                continue
            # The root always expands: a taxonomy with a childless top
            # element would be degenerate.
            if node != root and rng.random() > config.expand_probability:
                continue
            n_children = rng.randint(config.min_children, config.max_children)
            for _ in range(n_children):
                if len(taxonomy) >= config.target_topics:
                    break
                counter += 1
                topic = f"{config.root_label}/T{counter:05d}"
                taxonomy.add_topic(topic, node, label=f"Topic {counter}")
                next_frontier.append(topic)
        frontier = next_frontier

    # Top-up phase: probabilistic growth can stall well short of large
    # targets (e.g. the 20,000-topic Amazon scale).  Keep expanding
    # randomly chosen non-maximal-depth nodes until the target is met.
    expandable = [t for t in taxonomy if taxonomy.depth(t) < config.max_depth]
    while len(taxonomy) < config.target_topics and expandable:
        index = rng.randrange(len(expandable))
        node = expandable[index]
        n_children = rng.randint(config.min_children, config.max_children)
        for _ in range(n_children):
            if len(taxonomy) >= config.target_topics:
                break
            counter += 1
            topic = f"{config.root_label}/T{counter:05d}"
            taxonomy.add_topic(topic, node, label=f"Topic {counter}")
            if taxonomy.depth(topic) < config.max_depth:
                expandable.append(topic)
        # Swap-remove the expanded node so growth spreads across the tree.
        expandable[index] = expandable[-1]
        expandable.pop()
    return taxonomy


def assign_descriptors(
    taxonomy: Taxonomy,
    rng: random.Random,
    min_descriptors: int = 1,
    max_descriptors: int = 5,
    leaves: list[str] | None = None,
) -> frozenset[str]:
    """Draw a descriptor set ``f(b)`` for one product.

    Descriptors are leaf topics (Amazon classifies books into the most
    specific nodes); their number is uniform in the configured range —
    Example 1's *Matrix Analysis* carries 5.  Descriptors within one
    product cluster: after the first uniformly drawn leaf, subsequent ones
    are drawn from the same grandparent's subtree with high probability,
    because a real book's subject headings are thematically related.

    Pass a precomputed *leaves* list when classifying many products
    against one taxonomy — enumerating 20k topics per product dominates
    full-scale catalogue generation otherwise.
    """
    if leaves is None:
        leaves = taxonomy.leaves()
    if not leaves:
        return frozenset({taxonomy.root})
    count = rng.randint(min_descriptors, max_descriptors)
    first = rng.choice(leaves)
    chosen = {first}
    # Candidate pool for related descriptors: leaves below the
    # grandparent (or parent, near the root) of the first descriptor.
    anchor = taxonomy.parent(first)
    if anchor is not None and taxonomy.parent(anchor) is not None:
        anchor = taxonomy.parent(anchor)
    related = (
        [t for t in taxonomy.descendants(anchor) if taxonomy.is_leaf(t)]
        if anchor is not None
        else leaves
    )
    while len(chosen) < count:
        pool = related if related and rng.random() < 0.7 else leaves
        chosen.add(rng.choice(pool))
        if len(chosen) >= len(leaves):
            break
    return frozenset(chosen)


def generate_products(
    taxonomy: Taxonomy,
    n_products: int,
    seed: int = 42,
    min_descriptors: int = 1,
    max_descriptors: int = 5,
) -> dict[str, Product]:
    """Generate a catalogue of *n_products* ISBN-identified products."""
    if n_products < 1:
        raise ValueError("n_products must be at least 1")
    rng = random.Random(seed)
    leaves = taxonomy.leaves()
    products: dict[str, Product] = {}
    for index in range(n_products):
        identifier = f"isbn:978{index:010d}"
        products[identifier] = Product(
            identifier=identifier,
            title=f"Book {index}",
            descriptors=assign_descriptors(
                taxonomy, rng, min_descriptors, max_descriptors, leaves=leaves
            ),
        )
    return products
