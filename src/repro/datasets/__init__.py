"""Synthetic datasets replacing the crawled All Consuming/Amazon data (§4)."""

from .allconsuming import (
    ALLCONSUMING_AGENTS,
    ALLCONSUMING_BOOKS,
    allconsuming_config,
    generate_allconsuming,
)
from .amazon import (
    TaxonomyConfig,
    assign_descriptors,
    book_taxonomy_config,
    dvd_taxonomy_config,
    generate_products,
    generate_taxonomy,
)
from .generators import (
    CommunityConfig,
    SyntheticCommunity,
    generate_community,
    stream_trust_edges,
)
from .io import load_dataset, load_taxonomy, save_dataset, save_taxonomy

__all__ = [
    "ALLCONSUMING_AGENTS",
    "ALLCONSUMING_BOOKS",
    "CommunityConfig",
    "SyntheticCommunity",
    "TaxonomyConfig",
    "allconsuming_config",
    "assign_descriptors",
    "book_taxonomy_config",
    "dvd_taxonomy_config",
    "generate_allconsuming",
    "generate_community",
    "generate_products",
    "generate_taxonomy",
    "load_dataset",
    "load_taxonomy",
    "save_dataset",
    "save_taxonomy",
    "stream_trust_edges",
]
