"""Dataset snapshot persistence: JSON-lines save/load.

Snapshots let experiments reuse an expensive generated community and let
users feed their own crawled data into the system.  The format is one
JSON object per line with a ``kind`` discriminator — append-friendly,
diff-friendly, and streamable, so a multi-gigabyte crawl never has to fit
in memory as one JSON document.

Record kinds::

    {"kind": "agent",   "uri": ..., "name": ...}
    {"kind": "product", "id": ..., "title": ..., "descriptors": [...]}
    {"kind": "trust",   "source": ..., "target": ..., "value": ...}
    {"kind": "rating",  "agent": ..., "product": ..., "value": ...}
    {"kind": "topic",   "id": ..., "parent": ..., "label": ...}   # taxonomy

Topic records must be topologically ordered (parents first); the writers
here guarantee that.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path

from ..core.models import Agent, Dataset, Product, Rating, TrustStatement
from ..core.taxonomy import Taxonomy

__all__ = [
    "load_dataset",
    "load_taxonomy",
    "save_dataset",
    "save_taxonomy",
]


def _dataset_records(dataset: Dataset) -> Iterator[dict]:
    for uri in sorted(dataset.agents):
        agent = dataset.agents[uri]
        yield {"kind": "agent", "uri": agent.uri, "name": agent.name}
    for identifier in sorted(dataset.products):
        product = dataset.products[identifier]
        yield {
            "kind": "product",
            "id": product.identifier,
            "title": product.title,
            "descriptors": sorted(product.descriptors),
        }
    for key in sorted(dataset.trust):
        statement = dataset.trust[key]
        yield {
            "kind": "trust",
            "source": statement.source,
            "target": statement.target,
            "value": statement.value,
        }
    for key in sorted(dataset.ratings):
        rating = dataset.ratings[key]
        yield {
            "kind": "rating",
            "agent": rating.agent,
            "product": rating.product,
            "value": rating.value,
        }


def save_dataset(dataset: Dataset, path: str | Path) -> None:
    """Write *dataset* to *path* as JSON lines (sorted, deterministic)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for record in _dataset_records(dataset):
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")


def _apply_record(dataset: Dataset, record: dict, line_number: int) -> None:
    kind = record.get("kind")
    if kind == "agent":
        dataset.add_agent(Agent(uri=record["uri"], name=record.get("name", "")))
    elif kind == "product":
        dataset.add_product(
            Product(
                identifier=record["id"],
                title=record.get("title", ""),
                descriptors=frozenset(record.get("descriptors", ())),
            )
        )
    elif kind == "trust":
        dataset.add_trust(
            TrustStatement(
                source=record["source"],
                target=record["target"],
                value=float(record["value"]),
            )
        )
    elif kind == "rating":
        dataset.add_rating(
            Rating(
                agent=record["agent"],
                product=record["product"],
                value=float(record.get("value", 1.0)),
            )
        )
    else:
        raise ValueError(f"line {line_number}: unknown record kind {kind!r}")


def load_dataset(path: str | Path, validate: bool = True) -> Dataset:
    """Load a dataset snapshot written by :func:`save_dataset`.

    With ``validate=True`` (default) referential integrity is checked
    after loading; disable only for deliberately partial snapshots.
    """
    dataset = Dataset()
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"line {line_number}: invalid JSON") from exc
            _apply_record(dataset, record, line_number)
    if validate:
        dataset.validate()
    return dataset


def save_taxonomy(taxonomy: Taxonomy, path: str | Path) -> None:
    """Write *taxonomy* to *path* as JSON lines (parents before children)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        # Preorder walk guarantees the parent-first invariant.
        stack = [taxonomy.root]
        while stack:
            topic = stack.pop()
            record = {
                "kind": "topic",
                "id": topic,
                "parent": taxonomy.parent(topic),
                "label": taxonomy.label(topic),
            }
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            stack.extend(reversed(taxonomy.children(topic)))


def load_taxonomy(path: str | Path) -> Taxonomy:
    """Load a taxonomy snapshot written by :func:`save_taxonomy`."""
    path = Path(path)
    taxonomy: Taxonomy | None = None
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") != "topic":
                raise ValueError(
                    f"line {line_number}: expected topic record, got "
                    f"{record.get('kind')!r}"
                )
            parent = record["parent"]
            if parent is None:
                if taxonomy is not None:
                    raise ValueError(f"line {line_number}: second root topic")
                taxonomy = Taxonomy(record["id"], record.get("label", ""))
            else:
                if taxonomy is None:
                    raise ValueError(
                        f"line {line_number}: child topic before the root"
                    )
                taxonomy.add_topic(record["id"], parent, record.get("label", ""))
    if taxonomy is None:
        raise ValueError(f"{path}: no topic records found")
    return taxonomy


def iter_records(lines: Iterable[str]) -> Iterator[dict]:
    """Parse JSONL *lines* into records (utility for streaming consumers)."""
    for line in lines:
        line = line.strip()
        if line:
            yield json.loads(line)
