"""Synthetic community generation — the stand-in for the crawled data of §4.

The paper's experiments ran on data mined from All Consuming and Advogato:
about 9,100 users with trust relationships and implicit book ratings, plus
Amazon's taxonomy and categorization for 9,953 books.  Those communities
are gone; this generator reproduces the structural properties the
algorithms under test depend on:

* a sparse, directed, weighted trust graph with hub structure
  (preferential attachment) and *interest homophily* — people
  preferentially trust like-minded people, the empirical fact (§3.2,
  ref. [5]) that makes trust useful as a similarity surrogate;
* interest clusters anchored at taxonomy subtrees, with each agent rating
  mostly products classified under its own cluster's subtrees
  (``interest_fidelity`` controls how strongly);
* heavy-tailed rating counts (log-normal), implicit ``+1.0`` ratings by
  default (weblog link mining produces votes, not grades).

Every generated artifact is deterministic given the config seed.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass, field

from ..core.models import Agent, Dataset, Product, Rating, TrustStatement
from ..core.taxonomy import Taxonomy
from .amazon import TaxonomyConfig, book_taxonomy_config, generate_products, generate_taxonomy

__all__ = [
    "CommunityConfig",
    "SyntheticCommunity",
    "generate_community",
    "stream_trust_edges",
]


@dataclass(frozen=True, slots=True)
class CommunityConfig:
    """All knobs of the synthetic community generator."""

    n_agents: int = 500
    n_products: int = 1000
    n_clusters: int = 8
    seed: int = 42
    taxonomy: TaxonomyConfig | None = None

    #: Log-normal rating-count parameters and hard bounds per agent.
    ratings_mu: float = 2.3
    ratings_sigma: float = 0.6
    ratings_min: int = 2
    ratings_max: int = 80

    #: Probability that a rating targets a product of the agent's cluster.
    interest_fidelity: float = 0.8

    #: Explicit graded ratings instead of implicit +1.0 votes.
    explicit_ratings: bool = False

    #: Trust out-degree bounds and homophily (probability a trust edge
    #: stays within the agent's own interest cluster).
    trust_min_out: int = 2
    trust_mean_out: float = 8.0
    trust_homophily: float = 0.75

    #: Fraction of trust edges that are explicit distrust statements.
    distrust_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.n_agents < 2:
            raise ValueError("n_agents must be at least 2")
        if self.n_products < 1:
            raise ValueError("n_products must be at least 1")
        if not 1 <= self.n_clusters <= self.n_agents:
            raise ValueError("require 1 <= n_clusters <= n_agents")
        if not 0.0 <= self.interest_fidelity <= 1.0:
            raise ValueError("interest_fidelity must lie in [0, 1]")
        if not 0.0 <= self.trust_homophily <= 1.0:
            raise ValueError("trust_homophily must lie in [0, 1]")
        if not 0.0 <= self.distrust_fraction <= 0.5:
            raise ValueError("distrust_fraction must lie in [0, 0.5]")
        if self.trust_min_out < 1:
            raise ValueError("trust_min_out must be at least 1")
        if self.trust_mean_out < self.trust_min_out:
            raise ValueError("trust_mean_out must be >= trust_min_out")
        if not 1 <= self.ratings_min <= self.ratings_max:
            raise ValueError("require 1 <= ratings_min <= ratings_max")


@dataclass
class SyntheticCommunity:
    """A generated community plus the ground truth behind it.

    ``membership`` (agent URI -> cluster index) and ``cluster_topics``
    (cluster index -> anchor topic set) let experiments measure whether
    algorithms recover the planted structure.
    """

    dataset: Dataset
    taxonomy: Taxonomy
    membership: dict[str, int]
    cluster_topics: dict[int, tuple[str, ...]]
    config: CommunityConfig
    cluster_products: dict[int, tuple[str, ...]] = field(default_factory=dict)

    def agents_in_cluster(self, cluster: int) -> list[str]:
        """URIs of agents planted in *cluster*, sorted."""
        return sorted(a for a, c in self.membership.items() if c == cluster)


def _cluster_anchor_topics(
    taxonomy: Taxonomy, n_clusters: int, rng: random.Random
) -> dict[int, tuple[str, ...]]:
    """Pick disjoint-ish anchor subtrees, one batch per cluster.

    Anchors are drawn from the shallow inner topics (depth 1-2) so each
    cluster owns a coherent region of the taxonomy; with more clusters
    than shallow topics, anchors are reused cyclically (clusters may then
    overlap, which only makes the homophily signal weaker, never wrong).
    """
    candidates: list[str] = []
    for low, high in ((2, 3), (1, 2), (0, 1)):
        candidates = [
            t
            for t in taxonomy
            if low < taxonomy.depth(t) <= high and not taxonomy.is_leaf(t)
        ]
        if len(candidates) >= n_clusters:
            break
    if not candidates:
        candidates = [taxonomy.root]
    candidates.sort()  # iteration order of a dict-backed set is stable, but be explicit
    rng.shuffle(candidates)
    per_cluster = max(1, min(2, len(candidates) // n_clusters))
    anchors: dict[int, tuple[str, ...]] = {}
    for cluster in range(n_clusters):
        start = cluster * per_cluster
        batch = [
            candidates[(start + i) % len(candidates)] for i in range(per_cluster)
        ]
        anchors[cluster] = tuple(sorted(set(batch)))
    return anchors


def _products_under(
    taxonomy: Taxonomy,
    products: dict[str, Product],
    anchors: tuple[str, ...],
) -> list[str]:
    """Products with at least one descriptor inside an anchor's subtree."""
    anchor_topics: set[str] = set()
    for anchor in anchors:
        anchor_topics.add(anchor)
        anchor_topics.update(taxonomy.descendants(anchor))
    return sorted(
        identifier
        for identifier, product in products.items()
        if not product.descriptors.isdisjoint(anchor_topics)
    )


def _rating_count(config: CommunityConfig, rng: random.Random) -> int:
    draw = rng.lognormvariate(config.ratings_mu, config.ratings_sigma)
    return max(config.ratings_min, min(config.ratings_max, int(round(draw))))


def _rating_value(
    config: CommunityConfig, rng: random.Random, quality: float
) -> float:
    if not config.explicit_ratings:
        return 1.0
    # Explicit ratings share a latent per-product *quality* signal plus
    # personal noise — without the shared component, peers' ratings of
    # the same product would be mutually uninformative and no
    # collaborative predictor could beat the global mean.
    value = quality + rng.gauss(0.0, 0.2)
    if rng.random() < 0.05:  # occasional contrarian opinion
        value = -value
    return round(max(-1.0, min(1.0, value)), 3)


def generate_community(config: CommunityConfig) -> SyntheticCommunity:
    """Generate a full synthetic community from *config* (deterministic)."""
    rng = random.Random(config.seed)
    taxonomy_config = config.taxonomy or book_taxonomy_config(seed=config.seed)
    taxonomy = generate_taxonomy(taxonomy_config)
    products = generate_products(
        taxonomy, config.n_products, seed=config.seed + 1
    )

    dataset = Dataset(products=dict(products))
    width = len(str(config.n_agents))
    agent_uris = [
        f"http://agents.example.org/a{i:0{width}d}" for i in range(config.n_agents)
    ]
    for i, uri in enumerate(agent_uris):
        dataset.add_agent(Agent(uri=uri, name=f"Agent {i}"))

    membership = {
        uri: rng.randrange(config.n_clusters) for uri in agent_uris
    }
    anchors = _cluster_anchor_topics(taxonomy, config.n_clusters, rng)
    cluster_products = {
        cluster: tuple(_products_under(taxonomy, products, anchor_batch))
        for cluster, anchor_batch in anchors.items()
    }
    all_products = sorted(products)

    # -- ratings ------------------------------------------------------------
    # Latent product quality, shared across raters (explicit mode only).
    quality = {
        product: round(rng.uniform(0.1, 0.9), 3) for product in all_products
    }
    for uri in agent_uris:
        cluster = membership[uri]
        own_pool = cluster_products.get(cluster) or tuple(all_products)
        count = _rating_count(config, rng)
        chosen: set[str] = set()
        attempts = 0
        while len(chosen) < count and attempts < count * 20:
            attempts += 1
            if rng.random() < config.interest_fidelity:
                product = own_pool[rng.randrange(len(own_pool))]
            else:
                product = all_products[rng.randrange(len(all_products))]
            chosen.add(product)
        for product in sorted(chosen):
            dataset.add_rating(
                Rating(
                    agent=uri,
                    product=product,
                    value=_rating_value(config, rng, quality[product]),
                )
            )

    # -- trust edges ----------------------------------------------------------
    by_cluster: dict[int, list[str]] = {}
    for uri, cluster in membership.items():
        by_cluster.setdefault(cluster, []).append(uri)
    # Preferential attachment: targets drawn from a pool where every agent
    # appears once plus once more per received edge.
    attachment_pool: list[str] = list(agent_uris)
    cluster_pools: dict[int, list[str]] = {
        c: list(members) for c, members in by_cluster.items()
    }

    for uri in agent_uris:
        cluster = membership[uri]
        mean_extra = max(config.trust_mean_out - config.trust_min_out, 0.001)
        extra = int(rng.expovariate(1.0 / mean_extra)) if mean_extra > 0 else 0
        degree = min(config.trust_min_out + extra, config.n_agents - 1)
        targets: set[str] = set()
        attempts = 0
        while len(targets) < degree and attempts < degree * 30:
            attempts += 1
            same_cluster = rng.random() < config.trust_homophily
            pool = cluster_pools.get(cluster) if same_cluster else attachment_pool
            if not pool:
                pool = attachment_pool
            candidate = pool[rng.randrange(len(pool))]
            if candidate != uri and candidate not in targets:
                targets.add(candidate)
        for target in sorted(targets):
            if config.distrust_fraction > 0 and rng.random() < config.distrust_fraction:
                weight = -round(rng.uniform(0.3, 1.0), 3)
            else:
                weight = round(rng.uniform(0.4, 1.0), 3)
            dataset.add_trust(TrustStatement(source=uri, target=target, value=weight))
            # Strengthen preferential attachment toward popular agents.
            attachment_pool.append(target)
            cluster_pools.setdefault(membership[target], []).append(target)

    dataset.validate()
    return SyntheticCommunity(
        dataset=dataset,
        taxonomy=taxonomy,
        membership=membership,
        cluster_topics=anchors,
        config=config,
        cluster_products=cluster_products,
    )


def stream_trust_edges(
    n_agents: int,
    *,
    mean_out: float = 8.0,
    seed: int = 42,
    distrust_fraction: float = 0.05,
    n_clusters: int = 16,
    homophily: float = 0.75,
    hub_bias: float = 2.0,
) -> Iterator[tuple[str, str, float]]:
    """Stream the trust edges of a web-of-trust too large to materialize.

    :func:`generate_community` builds the whole :class:`Dataset` —
    products, ratings, taxonomy — which caps it at ~10^4 agents in
    practice.  Million-agent trust-propagation benchmarks only need the
    *edges*, so this generator yields ``(source, target, weight)``
    statements one at a time in O(out-degree) memory, shaped like the
    §4 communities the full generator plants:

    * heavy-tailed out-degrees (exponential around *mean_out*) with hub
      structure — low-index agents attract edges with probability
      ``~ rank^(-1/hub_bias)``, the streaming stand-in for preferential
      attachment;
    * interest homophily: with probability *homophily* an edge stays in
      the source's cluster (agents ``i ≡ c (mod n_clusters)``);
    * a *distrust_fraction* of statements carry negative weights.

    Ordered pairs are unique per source, self-loops never occur, every
    agent states at least one edge, and the stream is deterministic
    given *seed* — so two passes (one to pack a
    :class:`~repro.perf.trustmatrix.TrustMatrix`, one to build the
    oracle's :class:`~repro.trust.graph.TrustGraph`) see identical
    statements in identical order.
    """
    if n_agents < 2:
        raise ValueError("n_agents must be at least 2")
    if mean_out <= 0.0:
        raise ValueError("mean_out must be positive")
    if not 0.0 <= distrust_fraction <= 0.5:
        raise ValueError("distrust_fraction must lie in [0, 0.5]")
    if not 0.0 <= homophily <= 1.0:
        raise ValueError("homophily must lie in [0, 1]")
    if hub_bias < 1.0:
        raise ValueError("hub_bias must be at least 1.0")
    rng = random.Random(seed)
    n_clusters = max(1, min(n_clusters, n_agents))
    width = len(str(n_agents - 1))
    names = [f"urn:agent:{i:0{width}d}" for i in range(n_agents)]
    for i in range(n_agents):
        cluster = i % n_clusters
        # Agents i ≡ cluster (mod n_clusters): there are this many.
        members = (n_agents - cluster + n_clusters - 1) // n_clusters
        degree = 1 + min(n_agents - 2, int(rng.expovariate(1.0 / mean_out)))
        chosen: set[int] = set()
        for _ in range(degree):
            if members > 1 and rng.random() < homophily:
                j = cluster + n_clusters * int(members * rng.random() ** hub_bias)
            else:
                j = int(n_agents * rng.random() ** hub_bias)
            j = min(j, n_agents - 1)
            if j == i or j in chosen:
                continue
            chosen.add(j)
            if rng.random() < distrust_fraction:
                weight = -round(rng.uniform(0.3, 1.0), 3)
            else:
                weight = round(rng.uniform(0.4, 1.0), 3)
            yield names[i], names[j], weight
