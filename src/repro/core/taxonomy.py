"""The taxonomy ``C`` over topics ``D`` (§3.1) and the Figure 1 fragment.

The paper arranges topics in an acyclic graph with a partial subset order
and exactly one top element ⊤, then notes that the score-propagation
formula (Eq. 3) "for simplicity" assumes ``C`` tree-structured — every
deployment example (the Amazon book taxonomy) is a tree.  This module
therefore implements a rooted tree: each topic except the root has exactly
one parent.  Multi-classification flexibility comes from products carrying
*multiple descriptors*, not from multi-parent topics.

The module also ships the exact taxonomy fragment of Figure 1, with
sibling counts chosen to match Example 1's arithmetic (see DESIGN.md §5).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Optional

__all__ = ["Taxonomy", "TaxonomyError", "figure1_fragment"]


class TaxonomyError(ValueError):
    """Raised on structural violations: cycles, duplicate ids, orphans."""


class Taxonomy:
    """A single-rooted topic tree with O(1) parent/children access.

    Topics are identified by opaque strings (Amazon "browse node" ids in
    the deployment the paper describes).  The root is created by the
    constructor and represents the paper's top element ⊤ ("Books" in
    Figure 1).
    """

    def __init__(self, root: str = "ROOT", root_label: str = "") -> None:
        if not root:
            raise TaxonomyError("root identifier must be non-empty")
        self._root = root
        self._parent: dict[str, Optional[str]] = {root: None}
        self._children: dict[str, list[str]] = {root: []}
        self._labels: dict[str, str] = {root: root_label or root}
        self._depth: dict[str, int] = {root: 0}

    # -- construction -------------------------------------------------------

    def add_topic(self, topic: str, parent: str, label: str = "") -> None:
        """Insert *topic* as a child of *parent*.

        Children keep insertion order, which makes sibling enumeration and
        serialization deterministic.
        """
        if not topic:
            raise TaxonomyError("topic identifier must be non-empty")
        if topic in self._parent:
            raise TaxonomyError(f"duplicate topic {topic!r}")
        if parent not in self._parent:
            raise TaxonomyError(f"unknown parent {parent!r} for topic {topic!r}")
        self._parent[topic] = parent
        self._children[parent].append(topic)
        self._children[topic] = []
        self._labels[topic] = label or topic
        self._depth[topic] = self._depth[parent] + 1

    @classmethod
    def from_edges(
        cls,
        root: str,
        edges: Iterable[tuple[str, str]],
        labels: Optional[dict[str, str]] = None,
    ) -> "Taxonomy":
        """Build a taxonomy from (parent, child) *edges*.

        Edges may arrive in any order; the builder topologically sorts
        them and raises :class:`TaxonomyError` on cycles, orphan subtrees
        or multiple parents.
        """
        labels = labels or {}
        taxonomy = cls(root, labels.get(root, ""))
        pending: dict[str, list[tuple[str, str]]] = {}
        seen_child: set[str] = set()
        for parent, child in edges:
            if child in seen_child:
                raise TaxonomyError(f"topic {child!r} has multiple parents")
            seen_child.add(child)
            pending.setdefault(parent, []).append((parent, child))

        frontier = [root]
        while frontier:
            parent = frontier.pop()
            for parent_id, child in pending.pop(parent, []):
                taxonomy.add_topic(child, parent_id, labels.get(child, ""))
                frontier.append(child)
        if pending:
            unreachable = sorted(
                child for edge_list in pending.values() for _, child in edge_list
            )
            raise TaxonomyError(
                f"unreachable topics (cycle or orphan subtree): {unreachable}"
            )
        return taxonomy

    # -- accessors -----------------------------------------------------------

    @property
    def root(self) -> str:
        """The top element ⊤ of §3.1 (zero indegree)."""
        return self._root

    def __contains__(self, topic: str) -> bool:
        return topic in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def __iter__(self) -> Iterator[str]:
        return iter(self._parent)

    def label(self, topic: str) -> str:
        """Human-readable label of *topic*."""
        self._require(topic)
        return self._labels[topic]

    def parent(self, topic: str) -> Optional[str]:
        """Parent of *topic*; ``None`` for the root."""
        self._require(topic)
        return self._parent[topic]

    def children(self, topic: str) -> tuple[str, ...]:
        """Direct subtopics of *topic*, in insertion order."""
        self._require(topic)
        return tuple(self._children[topic])

    def depth(self, topic: str) -> int:
        """Edge distance from the root (root has depth 0)."""
        self._require(topic)
        return self._depth[topic]

    def is_leaf(self, topic: str) -> bool:
        """Whether *topic* has zero outdegree (a most-specific category)."""
        self._require(topic)
        return not self._children[topic]

    def leaves(self) -> list[str]:
        """All leaf topics."""
        return [t for t, kids in self._children.items() if not kids]

    def sibling_count(self, topic: str) -> int:
        """``sib(topic)``: number of siblings, per Eq. 3.  Root has 0."""
        parent = self.parent(topic)
        if parent is None:
            return 0
        return len(self._children[parent]) - 1

    def path_to_root(self, topic: str) -> list[str]:
        """The path ``(p_q = topic, ..., p_0 = root)`` bottom-up."""
        self._require(topic)
        path = [topic]
        current = self._parent[topic]
        while current is not None:
            path.append(current)
            current = self._parent[current]
        return path

    def path_from_root(self, topic: str) -> list[str]:
        """The path ``(p_0 = root, ..., p_q = topic)`` as written in §3.3."""
        return list(reversed(self.path_to_root(topic)))

    def ancestors(self, topic: str) -> list[str]:
        """Proper ancestors of *topic*, nearest first (excludes *topic*)."""
        return self.path_to_root(topic)[1:]

    def is_ancestor(self, ancestor: str, topic: str) -> bool:
        """Whether *ancestor* lies on the path from *topic* to the root.

        Implements the partial subset order ≤ of §3.1 (a topic is its own
        ancestor, matching subset reflexivity).
        """
        self._require(ancestor)
        return ancestor in self.path_to_root(topic)

    def descendants(self, topic: str) -> list[str]:
        """All topics strictly below *topic* (preorder)."""
        self._require(topic)
        out: list[str] = []
        stack = list(reversed(self._children[topic]))
        while stack:
            current = stack.pop()
            out.append(current)
            stack.extend(reversed(self._children[current]))
        return out

    def lowest_common_ancestor(self, first: str, second: str) -> str:
        """Deepest topic that is an ancestor of both arguments."""
        first_path = self.path_to_root(first)
        second_set = set(self.path_to_root(second))
        for topic in first_path:
            if topic in second_set:
                return topic
        return self._root  # unreachable: root is on every path

    # -- statistics ------------------------------------------------------------

    def max_depth(self) -> int:
        """Depth of the deepest topic."""
        return max(self._depth.values())

    def branching_stats(self) -> dict[str, float]:
        """Shape statistics: size, leaves, depth, mean branching of inner nodes.

        The paper's future work (§6) contrasts Amazon's deep book taxonomy
        with its broader, shallower DVD taxonomy; these statistics quantify
        that contrast for EX9.
        """
        inner = [t for t, kids in self._children.items() if kids]
        total_children = sum(len(self._children[t]) for t in inner)
        return {
            "topics": len(self._parent),
            "leaves": len(self.leaves()),
            "inner": len(inner),
            "max_depth": self.max_depth(),
            "mean_branching": total_children / len(inner) if inner else 0.0,
        }

    # -- helpers -----------------------------------------------------------------

    def _require(self, topic: str) -> None:
        if topic not in self._parent:
            raise TaxonomyError(f"unknown topic {topic!r}")

    def __repr__(self) -> str:
        return (
            f"Taxonomy(root={self._root!r}, topics={len(self._parent)}, "
            f"max_depth={self.max_depth()})"
        )


def figure1_fragment() -> Taxonomy:
    """The Amazon book-taxonomy fragment of Figure 1.

    Sibling counts are chosen to reproduce Example 1 exactly:
    Algebra has 1 sibling, Pure has 2, Mathematics has 3, Science has 3.
    The path exercised by Example 1 is
    Books -> Science -> Mathematics -> Pure -> Algebra.
    """
    t = Taxonomy("Books", "Books")
    # Children of the top element: Science plus three siblings.
    t.add_topic("Science", "Books")
    t.add_topic("Literature", "Books")
    t.add_topic("Reference", "Books")
    t.add_topic("Nonfiction", "Books")
    # Children of Science: Mathematics plus three siblings.
    t.add_topic("Mathematics", "Science")
    t.add_topic("Physics", "Science")
    t.add_topic("Astronomy", "Science")
    t.add_topic("Biology", "Science")
    # Children of Mathematics: Pure plus two siblings.
    t.add_topic("Pure", "Mathematics")
    t.add_topic("Applied", "Mathematics")
    t.add_topic("Discrete", "Mathematics")
    # Children of Pure: Algebra plus one sibling.
    t.add_topic("Algebra", "Pure")
    t.add_topic("Calculus", "Pure")
    return t
