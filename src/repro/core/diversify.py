"""Topic diversification of recommendation lists (§3.4).

§3.4 motivates recommending from "categories that a_i has left untouched
until present … incentive for trying new product groups becomes
created".  Beyond the hard filter of
:class:`~repro.core.recommender.ContentBasedExplorer`, the soft version
of that idea is *topic diversification*: rerank the candidate list so
consecutive picks are taxonomically dissimilar from the items already
chosen, trading a controlled amount of accuracy for lower intra-list
similarity.  (The algorithm follows the author's later published
formulation: greedy selection by a rank-merge of the original order and
the dissimilarity order, controlled by a diversification factor Θ.)

Product-to-product similarity is taxonomy-based: each product gets a
topic profile by pushing one unit of score through Eq. 3 for each of its
descriptors; profiles are compared with cosine.  Products with no
descriptors are maximally dissimilar to everything (they carry no topic
evidence).

:func:`intra_list_similarity` (ILS) is the evaluation metric: the mean
pairwise similarity of a list — diversification must lower it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..util.sync import GuardedCache
from .models import Product
from .profiles import Profile, descriptor_score_path
from .recommender import Recommendation
from .similarity import cosine
from .taxonomy import Taxonomy

__all__ = ["TopicDiversifier", "intra_list_similarity", "product_topic_profile"]


def product_topic_profile(taxonomy: Taxonomy, product: Product) -> Profile:
    """The taxonomy profile of one *product* (unit mass per descriptor)."""
    profile: Profile = {}
    known = sorted(t for t in product.descriptors if t in taxonomy)
    for topic in known:
        for node, score in descriptor_score_path(taxonomy, topic, 1.0).items():
            profile[node] = profile.get(node, 0.0) + score
    return profile


def intra_list_similarity(
    products: list[str], profiles: dict[str, Profile]
) -> float:
    """Mean pairwise cosine similarity of a product list (0.0 for < 2)."""
    n = len(products)
    if n < 2:
        return 0.0
    total = 0.0
    pairs = 0
    for i in range(n):
        left = profiles.get(products[i], {})
        for j in range(i + 1, n):
            total += cosine(left, profiles.get(products[j], {}))
            pairs += 1
    return total / pairs


@dataclass
class TopicDiversifier:
    """Greedy topic-diversification reranker.

    Parameters
    ----------
    taxonomy, products:
        Shared knowledge used to compute product topic profiles (cached).
    theta:
        Diversification factor Θ in [0, 1].  Θ=0 returns the original
        order; Θ=1 ranks purely by dissimilarity to the already-selected
        set (after the top item, which is always kept first).
    """

    taxonomy: Taxonomy
    products: dict[str, Product]
    theta: float = 0.5
    _profile_cache: GuardedCache[str, Profile] = field(
        default_factory=lambda: GuardedCache("product-topic-profiles"),
        repr=False,
        compare=False,
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.theta <= 1.0:
            raise ValueError("theta must lie in [0, 1]")

    def profile(self, identifier: str) -> Profile:
        """Cached topic profile of one product (empty if unknown)."""
        return self._profile_cache.get_or_build(identifier, self._build_profile)

    def _build_profile(self, identifier: str) -> Profile:
        product = self.products.get(identifier)
        if product is None:
            return {}
        return product_topic_profile(self.taxonomy, product)

    def invalidate(self) -> None:
        """Drop cached product topic profiles.

        Required after in-place taxonomy edits (RL200's taxonomy-caches
        pairing); rating churn alone never stales this cache.
        """
        self._profile_cache.invalidate()

    def rerank(
        self, candidates: list[Recommendation], limit: int = 10
    ) -> list[Recommendation]:
        """Diversified top-*limit* selection from *candidates*.

        *candidates* should be longer than *limit* (e.g. the top 5·limit
        by score) so the reranker has room to trade; the candidates'
        original order is treated as the accuracy ranking.
        """
        if limit < 1:
            raise ValueError("limit must be at least 1")
        if not candidates:
            return []
        remaining = list(candidates)
        selected: list[Recommendation] = [remaining.pop(0)]
        while remaining and len(selected) < limit:
            selected_profiles = [self.profile(r.product) for r in selected]

            def dissimilarity(rec: Recommendation) -> float:
                profile = self.profile(rec.product)
                if not selected_profiles:
                    return 0.0
                return -sum(cosine(profile, s) for s in selected_profiles)

            # Rank positions in the accuracy order (current remaining
            # order) and in the dissimilarity order.
            dissim_order = sorted(
                range(len(remaining)),
                key=lambda i: (-dissimilarity(remaining[i]), remaining[i].product),
            )
            dissim_rank = {index: pos for pos, index in enumerate(dissim_order)}
            best_index = min(
                range(len(remaining)),
                key=lambda i: (
                    (1.0 - self.theta) * i + self.theta * dissim_rank[i],
                    remaining[i].product,
                ),
            )
            selected.append(remaining.pop(best_index))
        return selected

    def ils(self, recommendations: list[Recommendation]) -> float:
        """Intra-list similarity of a recommendation list."""
        identifiers = [r.product for r in recommendations]
        profiles = {i: self.profile(i) for i in identifiers}
        return intra_list_similarity(identifiers, profiles)
