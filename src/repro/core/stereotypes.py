"""Automated stereotype generation from taxonomy profiles (§6).

The paper's future work: "we are currently investigating applicability
of taxonomy-based profile generation for automated stereotype generation
and efficient behavior modelling."  This module delivers that study:

* :func:`cluster_profiles` — spherical k-means over the sparse topic
  vectors (cosine assignment, centroid = normalized mean profile),
  deterministic given the seed, with empty-cluster reseeding;
* :class:`Stereotype` — a centroid profile plus its member agents;
* :class:`StereotypeRecommender` — assigns the principal to its nearest
  stereotype and recommends the products most popular *within that
  stereotype's membership*.  Because assignment costs one similarity per
  stereotype (instead of one per agent), this is the "efficient behavior
  modelling" angle: k ≪ |A| comparisons per recommendation.

EX12 (see :mod:`repro.evaluation.experiments_ext`) measures how well the
discovered stereotypes recover the generator's planted interest
clusters, and how stereotype recommendations compare to the full
pipeline.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from .models import Dataset
from .profiles import Profile
from .recommender import ProfileStore, Recommendation, Recommender
from .similarity import cosine

__all__ = ["Stereotype", "StereotypeModel", "StereotypeRecommender", "cluster_profiles"]


def _normalize(profile: Profile) -> Profile:
    norm = math.sqrt(sum(v * v for v in profile.values()))
    if norm <= 0.0:
        return {}
    return {k: v / norm for k, v in profile.items()}


def _mean_profile(profiles: list[Profile]) -> Profile:
    acc: Profile = {}
    for profile in profiles:
        for key, value in profile.items():
            acc[key] = acc.get(key, 0.0) + value
    n = len(profiles)
    return {k: v / n for k, v in acc.items()} if n else {}


@dataclass(frozen=True, slots=True)
class Stereotype:
    """One discovered stereotype: centroid profile plus its members."""

    index: int
    centroid: Profile
    members: tuple[str, ...]

    def top_topics(self, limit: int = 5) -> list[str]:
        """The centroid's highest-scoring topics (the stereotype's theme)."""
        ordered = sorted(self.centroid.items(), key=lambda kv: (-kv[1], kv[0]))
        return [topic for topic, _ in ordered[:limit]]


@dataclass
class StereotypeModel:
    """A fitted set of stereotypes with assignment support."""

    stereotypes: list[Stereotype]
    iterations: int
    converged: bool

    def assign(self, profile: Profile) -> int:
        """Index of the stereotype most similar to *profile* (cosine)."""
        if not self.stereotypes:
            raise ValueError("model has no stereotypes")
        best_index = 0
        best_value = -2.0
        for stereotype in self.stereotypes:
            value = cosine(profile, stereotype.centroid)
            if value > best_value:
                best_value = value
                best_index = stereotype.index
        return best_index

    def membership(self) -> dict[str, int]:
        """Agent URI -> stereotype index over all fitted members."""
        return {
            agent: stereotype.index
            for stereotype in self.stereotypes
            for agent in stereotype.members
        }


def cluster_profiles(
    profiles: dict[str, Profile],
    k: int,
    seed: int = 0,
    max_iterations: int = 50,
) -> StereotypeModel:
    """Spherical k-means over sparse profiles (deterministic per seed).

    Agents with empty profiles are excluded from fitting (they carry no
    behavioural signal); clusters that empty out mid-run are reseeded
    from the currently worst-served agent, so the model always returns
    exactly ``min(k, #non-empty agents)`` stereotypes.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    agents = sorted(a for a, p in profiles.items() if p)
    if not agents:
        return StereotypeModel(stereotypes=[], iterations=0, converged=True)
    k = min(k, len(agents))
    rng = random.Random(seed)
    normalized = {a: _normalize(profiles[a]) for a in agents}

    seeds = rng.sample(agents, k)
    centroids = [dict(normalized[a]) for a in seeds]
    assignment: dict[str, int] = {}
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        fresh: dict[str, int] = {}
        similarity_to_own: dict[str, float] = {}
        for agent in agents:
            best_index = 0
            best_value = -2.0
            for index, centroid in enumerate(centroids):
                value = cosine(normalized[agent], centroid)
                if value > best_value:
                    best_value = value
                    best_index = index
            fresh[agent] = best_index
            similarity_to_own[agent] = best_value
        if fresh == assignment:
            converged = True
            break
        assignment = fresh
        groups: dict[int, list[Profile]] = {}
        for agent, index in assignment.items():
            groups.setdefault(index, []).append(normalized[agent])
        for index in range(k):
            members = groups.get(index)
            if members:
                centroids[index] = _normalize(_mean_profile(members))
            else:
                # Reseed an empty cluster from the worst-served agent.
                worst = min(agents, key=lambda a: similarity_to_own[a])
                centroids[index] = dict(normalized[worst])

    by_cluster: dict[int, list[str]] = {}
    for agent, index in assignment.items():
        by_cluster.setdefault(index, []).append(agent)
    stereotypes = [
        Stereotype(
            index=index,
            centroid=centroids[index],
            members=tuple(sorted(by_cluster.get(index, ()))),
        )
        for index in range(k)
    ]
    return StereotypeModel(
        stereotypes=stereotypes, iterations=iteration, converged=converged
    )


@dataclass
class StereotypeRecommender(Recommender):
    """Recommend what the principal's stereotype's members like.

    Assignment costs k cosine comparisons; voting runs over the
    stereotype membership only.  The coarse but cheap baseline the
    paper's "efficient behavior modelling" remark points at.
    """

    dataset: Dataset
    profiles: ProfileStore
    model: StereotypeModel

    @classmethod
    def fit(
        cls,
        dataset: Dataset,
        profiles: ProfileStore,
        k: int = 8,
        seed: int = 0,
    ) -> "StereotypeRecommender":
        """Fit stereotypes over every agent's profile and wrap them."""
        fitted = cluster_profiles(
            {agent: profiles.profile(agent) for agent in dataset.agents},
            k=k,
            seed=seed,
        )
        return cls(dataset=dataset, profiles=profiles, model=fitted)

    def recommend(self, agent: str, limit: int = 10) -> list[Recommendation]:
        profile = self.profiles.profile(agent)
        if not profile or not self.model.stereotypes:
            return []
        index = self.model.assign(profile)
        stereotype = self.model.stereotypes[index]
        exclude = set(self.dataset.ratings_of(agent))
        counts: dict[str, int] = {}
        supporters: dict[str, list[str]] = {}
        for member in stereotype.members:
            if member == agent:
                continue
            for product, value in self.dataset.ratings_of(member).items():
                if value <= 0.0 or product in exclude:
                    continue
                counts[product] = counts.get(product, 0) + 1
                supporters.setdefault(product, []).append(member)
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            Recommendation(
                product=product,
                score=float(count),
                supporters=tuple(sorted(supporters[product])),
            )
            for product, count in ranked[:limit]
        ]
