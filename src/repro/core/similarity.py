"""Similarity measures over sparse interest profiles (§3.3).

The paper applies "common nearest-neighbor techniques, namely Pearson's
coefficient and cosine distance from Information Retrieval", with profile
vectors mapping *category score vectors* from the taxonomy instead of
plain product-rating vectors.

Both measures operate on sparse ``dict[str, float]`` vectors.  Two domain
conventions are supported:

* ``"union"`` — missing coordinates count as 0.  This is the right
  convention for taxonomy profiles, which are dense over the topics an
  agent cares about and genuinely zero elsewhere.
* ``"intersection"`` — only co-rated coordinates enter the computation,
  the classic CF convention for product-rating vectors (an unrated product
  is unknown, not disliked).
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Mapping
from typing import Literal

__all__ = [
    "SCORE_TOLERANCE",
    "cosine",
    "isclose",
    "overlap_keys",
    "pearson",
    "profile_overlap",
    "top_similar",
]

Domain = Literal["union", "intersection"]

#: The engine-equivalence tolerance: the numpy kernels reproduce this
#: module's results within this absolute bound (see
#: :mod:`repro.perf.kernels`).  Every comparison of similarity/trust/
#: score values anywhere in the reproduction should go through
#: :func:`isclose` with this default rather than a float ``==``.
SCORE_TOLERANCE = 1e-9


def isclose(left: float, right: float, *, tol: float = SCORE_TOLERANCE) -> bool:
    """Whether two score values agree within the engine contract.

    The single source of truth for the 1e-9 dual-engine equivalence
    bound: absolute tolerance, so values near 0.0 (the "no evidence"
    convention) compare sanely, and NaN never equals anything — a NaN
    score is a bug upstream, not a value to match.
    """
    return abs(left - right) <= tol

#: Pairs with fewer co-rated coordinates than this yield similarity 0 in
#: intersection mode — a single shared coordinate makes Pearson degenerate.
MIN_INTERSECTION = 2


def _domain_keys(
    left: Mapping[str, float], right: Mapping[str, float], domain: Domain
) -> list[str]:
    # sorted(): set-algebra order depends on PYTHONHASHSEED, and float
    # summation order shifts the low bits — enough to break byte-identical
    # parallel merges across processes.
    if domain == "union":
        return sorted(left.keys() | right.keys())
    if domain == "intersection":
        return sorted(left.keys() & right.keys())
    raise ValueError(f"unknown domain {domain!r}")


def pearson(
    left: Mapping[str, float],
    right: Mapping[str, float],
    domain: Domain = "union",
) -> float:
    """Pearson's correlation coefficient over the chosen key *domain*.

    Returns a value in ``[-1, +1]``; degenerate cases (empty domain, too
    few co-rated items in intersection mode, zero variance) return 0.0,
    meaning "no evidence of correlation" — the same convention GroupLens
    uses for undefined correlations.
    """
    keys = _domain_keys(left, right, domain)
    if not keys:
        return 0.0
    if domain == "intersection" and len(keys) < MIN_INTERSECTION:
        return 0.0
    n = len(keys)
    left_values = [left.get(k, 0.0) for k in keys]
    right_values = [right.get(k, 0.0) for k in keys]
    mean_left = sum(left_values) / n
    mean_right = sum(right_values) / n
    cov = 0.0
    var_left = 0.0
    var_right = 0.0
    for lv, rv in zip(left_values, right_values):
        dl = lv - mean_left
        dr = rv - mean_right
        cov += dl * dr
        var_left += dl * dl
        var_right += dr * dr
    if var_left <= 0.0 or var_right <= 0.0:
        return 0.0
    # sqrt each factor separately: the product of two tiny variances can
    # underflow to 0.0 even when both are representable.
    denominator = math.sqrt(var_left) * math.sqrt(var_right)
    if denominator <= 0.0:
        return 0.0
    value = cov / denominator
    # Guard against floating-point drift past the mathematical bounds.
    return max(-1.0, min(1.0, value))


def cosine(
    left: Mapping[str, float],
    right: Mapping[str, float],
    domain: Domain = "union",
) -> float:
    """Cosine similarity over the chosen key *domain*.

    In union mode only shared keys contribute to the dot product, so the
    implementation iterates the smaller vector; norms always use each
    vector's own coordinates.  Degenerate cases return 0.0.
    """
    if not left or not right:
        return 0.0
    if domain == "intersection":
        keys = left.keys() & right.keys()
        if len(keys) < MIN_INTERSECTION:
            return 0.0
        dot = sum(left[k] * right[k] for k in keys)
        norm_left = math.sqrt(sum(left[k] ** 2 for k in keys))
        norm_right = math.sqrt(sum(right[k] ** 2 for k in keys))
    else:
        small, large = (left, right) if len(left) <= len(right) else (right, left)
        dot = sum(v * large[k] for k, v in small.items() if k in large)
        norm_left = math.sqrt(sum(v * v for v in left.values()))
        norm_right = math.sqrt(sum(v * v for v in right.values()))
    if norm_left <= 0.0 or norm_right <= 0.0:
        return 0.0
    value = dot / (norm_left * norm_right)
    return max(-1.0, min(1.0, value))


def overlap_keys(
    left: Mapping[str, float], right: Mapping[str, float]
) -> set[str]:
    """Coordinates present in both vectors."""
    return set(left.keys() & right.keys())


def profile_overlap(
    left: Mapping[str, float], right: Mapping[str, float]
) -> float:
    """Jaccard overlap of the two vectors' supports.

    This is the quantity behind the paper's "low profile overlap" research
    issue (§2): for raw product vectors over a large catalogue it is almost
    always 0, while taxonomy propagation pushes it toward 1 (every profile
    touches the root's neighborhood).
    """
    if not left and not right:
        return 0.0
    union = len(left.keys() | right.keys())
    if union == 0:
        return 0.0
    return len(left.keys() & right.keys()) / union


def top_similar(
    target: Mapping[str, float],
    candidates: Mapping[str, Mapping[str, float]],
    measure: str = "pearson",
    domain: Domain = "union",
    limit: int | None = None,
    engine: str = "auto",
) -> list[tuple[str, float]]:
    """Rank *candidates* (id -> profile) by similarity to *target*.

    Ties break on the candidate identifier for determinism.  *engine*
    selects the implementation: ``"python"`` computes one dict pair at a
    time (this module's functions), ``"numpy"`` packs the candidates
    into a :class:`~repro.perf.matrix.ProfileMatrix` and scores them
    with one vectorized kernel call, ``"auto"`` picks numpy for
    large-enough candidate sets.  Both engines agree on rankings and
    values to within 1e-9 (see ``tests/test_perf_kernels.py``).
    """
    if measure == "pearson":
        func = pearson
    elif measure == "cosine":
        func = cosine
    else:
        raise ValueError(f"unknown similarity measure {measure!r}")
    if domain not in ("union", "intersection"):
        raise ValueError(f"unknown domain {domain!r}")
    # Imported lazily: repro.perf.engine imports this module for oracles.
    from ..perf.engine import resolve_engine

    if resolve_engine(engine, size=len(candidates)) == "numpy":
        from ..perf.engine import rank_profiles

        return rank_profiles(
            target, candidates, measure=measure, domain=domain, limit=limit
        )
    scored = [
        (identifier, func(target, profile, domain))
        for identifier, profile in candidates.items()
    ]
    if limit is not None and 0 <= limit < len(scored):
        # Heap selection: don't sort the whole community for a top-N ask.
        return heapq.nsmallest(limit, scored, key=lambda item: (-item[1], item[0]))
    scored.sort(key=lambda item: (-item[1], item[0]))
    return scored if limit is None else scored[:limit]
