"""Trust neighborhood formation (§3.2) — the first pillar.

Wraps a local group trust metric (Appleseed by default) and turns its
continuous ranks into the bounded peer set the similarity stage then
filters.  Selection supports both of the paper's framings: a rank
*threshold* ("peers whose trustworthiness lies above some given
threshold", §3.3) and a *top-M* cut that keeps neighborhoods "sufficiently
narrow" for scalability (§2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trust.appleseed import Appleseed, AppleseedResult
from ..trust.graph import TrustGraph

__all__ = ["NeighborhoodFormation", "TrustNeighborhood", "normalize_ranks"]


def normalize_ranks(ranks: dict[str, float]) -> dict[str, float]:
    """Scale ranks into ``[0, 1]`` by the maximum (empty input stays empty).

    Appleseed rank magnitudes depend on the injected energy; synthesis
    (§3.4) needs them commensurable with similarity values, hence the
    normalization.
    """
    if not ranks:
        return {}
    peak = max(ranks.values())
    if peak <= 0.0:
        return {agent: 0.0 for agent in ranks}
    return {agent: value / peak for agent, value in ranks.items()}


@dataclass(frozen=True, slots=True)
class TrustNeighborhood:
    """A computed neighborhood: selected peers with raw and normal ranks."""

    source: str
    ranks: dict[str, float]
    normalized: dict[str, float]
    metric_result: AppleseedResult | None = None

    def __contains__(self, agent: str) -> bool:
        return agent in self.ranks

    def __len__(self) -> int:
        return len(self.ranks)

    def members(self) -> set[str]:
        return set(self.ranks)

    def top(self, limit: int | None = None) -> list[tuple[str, float]]:
        ordered = sorted(self.ranks.items(), key=lambda kv: (-kv[1], kv[0]))
        return ordered if limit is None else ordered[:limit]


class NeighborhoodFormation:
    """Builds :class:`TrustNeighborhood` objects for source agents.

    Parameters
    ----------
    metric:
        The group trust metric; defaults to Appleseed with published
        parameters.
    injection:
        Energy injected per computation (Appleseed's ``in_0``).
    threshold:
        Minimum raw rank for a peer to enter the neighborhood.
    max_peers:
        Optional top-M cut applied after thresholding.
    engine:
        Trust-propagation engine for the default metric
        (``"auto"``/``"numpy"``/``"python"``); ignored when an explicit
        *metric* is supplied, which carries its own engine choice.
    """

    def __init__(
        self,
        metric: Appleseed | None = None,
        injection: float = 200.0,
        threshold: float = 0.0,
        max_peers: int | None = None,
        engine: str = "python",
    ) -> None:
        if injection <= 0.0:
            raise ValueError("injection must be positive")
        if threshold < 0.0:
            raise ValueError("threshold must be non-negative")
        if max_peers is not None and max_peers < 1:
            raise ValueError("max_peers must be at least 1 when given")
        self.metric = metric or Appleseed(engine=engine)
        self.injection = injection
        self.threshold = threshold
        self.max_peers = max_peers

    def form(self, graph: TrustGraph, source: str) -> TrustNeighborhood:
        """Compute the trust neighborhood of *source* over *graph*."""
        result = self.metric.compute(graph, source, self.injection)
        selected = {
            agent: rank
            for agent, rank in result.ranks.items()
            if rank > self.threshold
        }
        if self.max_peers is not None and len(selected) > self.max_peers:
            kept = sorted(selected.items(), key=lambda kv: (-kv[1], kv[0]))
            selected = dict(kept[: self.max_peers])
        return TrustNeighborhood(
            source=source,
            ranks=selected,
            normalized=normalize_ranks(selected),
            metric_result=result,
        )
