"""Taxonomy-based interest profile generation (§3.3, Eq. 3, Example 1).

Profiles are sparse mappings from topic identifiers to interest scores.
Generation proceeds exactly as the paper prescribes:

1. the fixed overall profile score ``s`` is divided evenly among all
   products contributing to the profile ("Score s is divided evenly among
   all products that contribute to a_i's profile makeup");
2. each product's share is divided evenly among its topic descriptors
   (Example 1: 4 books, 5 descriptors → per-descriptor budget
   ``s / (4·5) = 50``);
3. each descriptor's budget is distributed over the path from its topic up
   to the top element with geometric attenuation, Eq. 3:
   ``sco(p_m) = sco(p_{m+1}) / (sib(p_{m+1}) + 1)``.

Step 1 is what makes "high product ratings from agents with short rating
histories have higher impact" — every profile carries the same total mass.

Two baseline builders reproduce the alternatives the paper argues against:
flat category vectors (Sollenborn & Funk style, no propagation) and raw
product vectors (classic CF).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Literal as TypingLiteral
from typing import Optional

from ..util.sync import GuardedCache, ReentrantGuard
from .models import Product
from .taxonomy import Taxonomy

__all__ = [
    "DEFAULT_PROFILE_SCORE",
    "Profile",
    "TaxonomyProfileBuilder",
    "descriptor_score_path",
    "flat_category_profile",
    "product_profile",
]

#: The overall accorded profile score of Example 1.
DEFAULT_PROFILE_SCORE = 1000.0

#: A sparse interest profile: topic identifier -> accumulated score.
Profile = dict[str, float]

ProductWeighting = TypingLiteral["uniform", "rating"]
NegativeMode = TypingLiteral["ignore", "signed"]


def descriptor_score_path(
    taxonomy: Taxonomy, topic: str, budget: float
) -> dict[str, float]:
    """Distribute *budget* over the path from *topic* to the root per Eq. 3.

    Returns a mapping containing every node on the path.  The relative
    weight of the descriptor's own topic is 1; each step toward the root
    divides the weight by ``sib(child) + 1``; weights are then scaled so
    the path total equals *budget*.

    For Example 1 (budget 50, path Books→Science→Mathematics→Pure→Algebra
    with sibling counts 3/3/2/1 along the way) this yields
    ``{Algebra: 29.0909…, Pure: 14.5454…, Mathematics: 4.8484…,
    Science: 1.2121…, Books: 0.30303…}``.
    """
    path = taxonomy.path_to_root(topic)  # [topic, ..., root]
    weights = [1.0]
    for node in path[:-1]:  # attenuate from each child toward its parent
        weights.append(weights[-1] / (taxonomy.sibling_count(node) + 1))
    total = sum(weights)
    scale = budget / total if total else 0.0
    return {node: weight * scale for node, weight in zip(path, weights)}


class TaxonomyProfileBuilder:
    """Builds normalized taxonomy profiles from an agent's ratings.

    Parameters
    ----------
    taxonomy:
        The shared taxonomy ``C``.
    total_score:
        The fixed profile mass ``s`` (Example 1 uses 1000).
    product_weighting:
        ``"uniform"`` (the paper's even split) or ``"rating"`` (ablation:
        products weighted by rating magnitude before normalization).
    negative_mode:
        ``"ignore"`` drops non-positive ratings (the paper's implicit-vote
        setting mines *liked* items only); ``"signed"`` lets negative
        ratings subtract topic score, for explicit-rating communities.
    """

    def __init__(
        self,
        taxonomy: Taxonomy,
        total_score: float = DEFAULT_PROFILE_SCORE,
        product_weighting: ProductWeighting = "uniform",
        negative_mode: NegativeMode = "ignore",
    ) -> None:
        if total_score <= 0:
            raise ValueError("total_score must be positive")
        if product_weighting not in ("uniform", "rating"):
            raise ValueError(f"unknown product_weighting {product_weighting!r}")
        if negative_mode not in ("ignore", "signed"):
            raise ValueError(f"unknown negative_mode {negative_mode!r}")
        self.taxonomy = taxonomy
        self.total_score = float(total_score)
        self.product_weighting = product_weighting
        self.negative_mode = negative_mode
        # Per-topic path distributions are rating-independent, so memoize.
        # Both memo tables share one re-entrant guard so a taxonomy edit's
        # invalidation clears them as a unit under concurrent builds.
        self._cache_guard = ReentrantGuard("taxonomy-profile-builder")
        self._path_cache: GuardedCache[str, dict[str, float]] = GuardedCache(
            "path-scores", guard=self._cache_guard
        )
        # Descriptor filtering is product-and-taxonomy-dependent only, yet
        # it used to be re-sorted for every rating of every agent; memoize
        # per product identifier (descriptor sets are frozen on Product and
        # identifiers are globally unique, the paper's ISBN assumption).
        self._descriptor_cache: GuardedCache[str, list[str]] = GuardedCache(
            "known-descriptors", guard=self._cache_guard
        )

    # -- public API -----------------------------------------------------------

    def invalidate(self) -> None:
        """Drop the memoized path distributions and descriptor lists.

        Both caches are keyed on taxonomy structure (and frozen product
        descriptors), so they survive any amount of rating churn — but a
        process that edits its taxonomy in place (the streaming-update
        path the ROADMAP plans) must call this or serve profiles built
        against the old topic tree (RL200's taxonomy-caches pairing).
        """
        with self._cache_guard:
            self._path_cache.invalidate()
            self._descriptor_cache.invalidate()

    def build(
        self,
        ratings: Mapping[str, float],
        products: Mapping[str, Product],
    ) -> Profile:
        """Build the profile for an agent with rating function *ratings*.

        *products* maps product identifiers to :class:`Product` records;
        rated products missing from it, or classified with topics unknown
        to the taxonomy, are skipped (crawled data is never perfectly
        aligned with the shared taxonomy).
        """
        contributions = self._contributions(ratings, products)
        if not contributions:
            return {}
        weight_total = sum(abs(w) for _, w in contributions)
        profile: Profile = {}
        for product, weight in contributions:
            product_share = self.total_score * abs(weight) / weight_total
            sign = 1.0 if weight >= 0 else -1.0
            descriptors = self._known_descriptors(product)
            budget = product_share / len(descriptors)
            for topic in descriptors:
                for node, score in self._path_scores(topic).items():
                    profile[node] = profile.get(node, 0.0) + sign * score * budget
        return profile

    def profile_mass(self, profile: Profile) -> float:
        """Total absolute score a profile assigns (≈ ``s`` by construction)."""
        return sum(abs(v) for v in profile.values())

    # -- internals --------------------------------------------------------------

    def _contributions(
        self,
        ratings: Mapping[str, float],
        products: Mapping[str, Product],
    ) -> list[tuple[Product, float]]:
        contributions: list[tuple[Product, float]] = []
        for identifier in sorted(ratings):
            value = ratings[identifier]
            product = products.get(identifier)
            if product is None:
                continue
            if not self._known_descriptors(product):
                continue
            if value <= 0 and self.negative_mode == "ignore":
                continue
            if value == 0:
                continue
            weight = 1.0 if self.product_weighting == "uniform" else value
            if self.product_weighting == "uniform" and value < 0:
                weight = -1.0
            contributions.append((product, weight))
        return contributions

    def _known_descriptors(self, product: Product) -> list[str]:
        return self._descriptor_cache.get_or_build(
            product.identifier,
            lambda _key: sorted(t for t in product.descriptors if t in self.taxonomy),
        )

    def _path_scores(self, topic: str) -> dict[str, float]:
        return self._path_cache.get_or_build(topic, self._build_path_scores)

    def _build_path_scores(self, topic: str) -> dict[str, float]:
        return descriptor_score_path(self.taxonomy, topic, 1.0)


def flat_category_profile(
    ratings: Mapping[str, float],
    products: Mapping[str, Product],
    known_topics: Optional[Iterable[str]] = None,
    total_score: float = DEFAULT_PROFILE_SCORE,
) -> Profile:
    """Category-based baseline: descriptor topics only, no propagation.

    This is the "category-based collaborative filtering" alternative the
    paper criticizes (§3.3): relationships between categories are lost, so
    two agents interested in sibling topics show zero overlap.
    """
    topic_filter = set(known_topics) if known_topics is not None else None
    contributing: list[tuple[str, list[str]]] = []
    for identifier in sorted(ratings):
        if ratings[identifier] <= 0:
            continue
        product = products.get(identifier)
        if product is None:
            continue
        descriptors = sorted(
            t
            for t in product.descriptors
            if topic_filter is None or t in topic_filter
        )
        if descriptors:
            contributing.append((identifier, descriptors))
    if not contributing:
        return {}
    per_product = total_score / len(contributing)
    profile: Profile = {}
    for _, descriptors in contributing:
        per_topic = per_product / len(descriptors)
        for topic in descriptors:
            profile[topic] = profile.get(topic, 0.0) + per_topic
    return profile


def product_profile(ratings: Mapping[str, float]) -> Profile:
    """Raw product-vector baseline: the classic CF representation (§2).

    Keys are product identifiers rather than topics; values are the raw
    ratings.  Kept un-normalized because Pearson correlation is
    translation/scale invariant and cosine is scale invariant.
    """
    return dict(ratings)
