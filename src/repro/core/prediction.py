"""Numeric rating prediction on top of the peer-weight pipeline.

The paper's §3.4 frames recommendation as peer *voting*; communities
with explicit ratings additionally want a predicted rating value for a
given (agent, product) pair — the classic CF task.  This module adapts
the GroupLens/Resnick estimator to the trust-aware setting: the
prediction for product ``b`` is the weighted mean of the peers' ratings
of ``b``, with each peer's §3.4 overall rank weight as the weight, and
mean-centering to correct for per-peer rating bias.

``predict`` works with any weight source (trust neighborhood weights,
pure-CF similarity weights, …), so the EX12 benchmark can compare
predictors that differ only in where their weights come from.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from ..util.sync import GuardedCache
from .models import Dataset

__all__ = ["RatingPredictor", "predict_rating"]


def _mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def predict_rating(
    dataset: Dataset,
    agent: str,
    product: str,
    weights: Mapping[str, float],
    mean_centered: bool = True,
) -> float | None:
    """Predict ``r_agent(product)`` from weighted peer ratings.

    Returns ``None`` when no positively weighted peer rated *product*
    (the paper's ⊥: no basis for a prediction).  With *mean_centered*
    the estimator is Resnick's: the agent's own rating mean plus the
    weighted mean of peer deviations; otherwise a plain weighted mean.
    Predictions are clamped to the ``[-1, +1]`` rating scale.
    """
    raters = dataset.raters_of(product)
    weighted = [
        (weights[peer], value)
        for peer, value in raters.items()
        if peer != agent and weights.get(peer, 0.0) > 0.0
    ]
    if not weighted:
        return None
    total_weight = sum(w for w, _ in weighted)
    if not mean_centered:
        estimate = sum(w * v for w, v in weighted) / total_weight
        return max(-1.0, min(1.0, estimate))

    own_mean = _mean(dataset.ratings_of(agent).values())
    deviation = 0.0
    for peer, value in raters.items():
        weight = weights.get(peer, 0.0)
        if peer == agent or weight <= 0.0:
            continue
        peer_mean = _mean(dataset.ratings_of(peer).values())
        deviation += weight * (value - peer_mean)
    estimate = own_mean + deviation / total_weight
    return max(-1.0, min(1.0, estimate))


@dataclass
class RatingPredictor:
    """Convenience wrapper binding a dataset and a weight provider.

    ``weight_provider`` maps an agent URI to its peer-weight dictionary;
    pass ``SemanticWebRecommender.peer_weights`` for the trust-aware
    predictor or ``PureCFRecommender.peer_weights`` for the baseline.
    Weights are cached per agent because one evaluation predicts many
    products for the same agent.
    """

    dataset: Dataset
    weight_provider: object  # Callable[[str], Mapping[str, float]]
    mean_centered: bool = True

    def __post_init__(self) -> None:
        self._weight_cache: GuardedCache[str, Mapping[str, float]] = GuardedCache(
            "peer-weights"
        )

    def _weights(self, agent: str) -> Mapping[str, float]:
        return self._weight_cache.get_or_build(agent, self._build_weights)

    def _build_weights(self, agent: str) -> Mapping[str, float]:
        return self.weight_provider(agent)  # type: ignore[operator]

    def predict(self, agent: str, product: str) -> float | None:
        """Predict one rating; ``None`` when no evidence exists."""
        return predict_rating(
            self.dataset,
            agent,
            product,
            self._weights(agent),
            mean_centered=self.mean_centered,
        )

    def predict_many(
        self, agent: str, products: list[str]
    ) -> dict[str, float]:
        """Predict several ratings, dropping the ``None`` (⊥) cases."""
        out: dict[str, float] = {}
        for product in products:
            value = self.predict(agent, product)
            if value is not None:
                out[product] = value
        return out
