"""The §3.1 information model: agents, products, trust and rating functions.

The paper defines five building blocks:

* a set of agents ``A`` with globally unique URIs,
* a set of products ``B`` with unique identifiers (e.g. ISBNs),
* partial trust functions ``t_i : A -> [-1, +1]`` (sparse; ⊥ elsewhere),
* partial rating functions ``r_i : B -> [-1, +1]`` (sparse; ⊥ elsewhere),
* a taxonomy ``C`` over topics ``D`` plus a descriptor assignment
  ``f : B -> 2^D`` (modelled in :mod:`repro.core.taxonomy`).

This module provides typed containers for the first four plus a
:class:`Dataset` aggregate that owns the whole community.  Partiality is
modelled by absence from a mapping rather than a sentinel value: where the
paper writes ``t_i(a_j) = ⊥`` we simply have no entry.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "Agent",
    "Dataset",
    "Product",
    "Rating",
    "TrustStatement",
    "clamp_score",
    "validate_score",
]

#: Inclusive bounds of the paper's trust and rating scales.
SCORE_MIN = -1.0
SCORE_MAX = 1.0


def validate_score(value: float, kind: str = "score") -> float:
    """Check that *value* lies in the paper's ``[-1, +1]`` scale.

    Returns the value as a float; raises :class:`ValueError` otherwise.
    NaN is rejected because a NaN trust weight silently corrupts
    spreading-activation energy flows.
    """
    value = float(value)
    if not (SCORE_MIN <= value <= SCORE_MAX):
        raise ValueError(f"{kind} must lie in [-1, +1], got {value}")
    return value


def clamp_score(value: float, kind: str = "score") -> float:
    """Coerce *value* onto the paper's ``[-1, +1]`` scale.

    The ingestion-boundary counterpart of :func:`validate_score`: crawled
    homepages are untrusted (§3.2, §4), so an out-of-range weight is not
    a programming error to raise on but adversarial input to neutralize.
    Values are clamped to the nearest bound; NaN is still rejected with
    :class:`ValueError` because no clamp target exists for it (and a NaN
    weight would silently corrupt spreading-activation energy flows).
    """
    value = float(value)
    if math.isnan(value):
        raise ValueError(f"{kind} must not be NaN")
    return min(max(value, SCORE_MIN), SCORE_MAX)


@dataclass(frozen=True, slots=True)
class Agent:
    """A community member ``a_i ∈ A``.

    ``uri`` is the globally unique identifier the paper mandates; ``name``
    is a human-readable label used by the FOAF publisher.
    """

    uri: str
    name: str = ""

    def __post_init__(self) -> None:
        if not self.uri:
            raise ValueError("agent URI must be non-empty")

    def __str__(self) -> str:
        return self.name or self.uri


@dataclass(frozen=True, slots=True)
class Product:
    """A product ``b_j ∈ B`` with its taxonomy descriptors ``f(b_j)``.

    ``identifier`` plays the role of an ISBN: a globally agreed-upon key.
    ``descriptors`` is the (frozen) set of topic identifiers assigned by
    the descriptor assignment function ``f``; the paper notes
    ``|f(b_j)| >= 1`` for classified products, but unclassified products do
    occur in crawled data, so an empty set is permitted and handled
    downstream (such products contribute nothing to taxonomy profiles).
    """

    identifier: str
    title: str = ""
    descriptors: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if not self.identifier:
            raise ValueError("product identifier must be non-empty")
        object.__setattr__(self, "descriptors", frozenset(self.descriptors))

    def __str__(self) -> str:
        return self.title or self.identifier


@dataclass(frozen=True, slots=True)
class TrustStatement:
    """One entry of a partial trust function: ``t_source(target) = value``.

    Positive values denote trust, negative explicit distrust; values around
    zero mean weak trust — the paper stresses this must not be confused
    with distrust (§3.1).
    """

    source: str
    target: str
    value: float

    def __post_init__(self) -> None:
        validate_score(self.value, "trust value")
        if self.source == self.target:
            raise ValueError("self-trust statements are not allowed")


@dataclass(frozen=True, slots=True)
class Rating:
    """One entry of a partial rating function: ``r_agent(product) = value``.

    Implicit ratings mined from weblog links (§4) carry the conventional
    value ``+1.0``; explicit ratings use the full ``[-1, +1]`` scale.
    """

    agent: str
    product: str
    value: float = 1.0

    def __post_init__(self) -> None:
        validate_score(self.value, "rating value")

    @property
    def is_positive(self) -> bool:
        """Whether this rating expresses liking (used for CF voting)."""
        return self.value > 0.0


@dataclass
class Dataset:
    """A complete community snapshot: ``A``, ``B``, ``T`` and ``R``.

    The taxonomy ``C`` and descriptor assignment ``f`` are global shared
    knowledge in the paper's architecture, so the taxonomy object is held
    separately (see :class:`repro.core.taxonomy.Taxonomy`); descriptors are
    denormalized onto each :class:`Product` for locality.

    Invariants enforced by :meth:`validate`:

    * every trust statement references known agents,
    * every rating references a known agent and a known product,
    * at most one trust statement per (source, target) pair and one rating
      per (agent, product) pair.
    """

    agents: dict[str, Agent] = field(default_factory=dict)
    products: dict[str, Product] = field(default_factory=dict)
    trust: dict[tuple[str, str], TrustStatement] = field(default_factory=dict)
    ratings: dict[tuple[str, str], Rating] = field(default_factory=dict)

    # -- construction -----------------------------------------------------

    def add_agent(self, agent: Agent) -> None:
        """Register *agent*, rejecting duplicate URIs with different data."""
        existing = self.agents.get(agent.uri)
        if existing is not None and existing != agent:
            raise ValueError(f"conflicting redefinition of agent {agent.uri}")
        self.agents[agent.uri] = agent

    def add_product(self, product: Product) -> None:
        """Register *product*, rejecting conflicting redefinitions."""
        existing = self.products.get(product.identifier)
        if existing is not None and existing != product:
            raise ValueError(
                f"conflicting redefinition of product {product.identifier}"
            )
        self.products[product.identifier] = product

    def add_trust(self, statement: TrustStatement) -> None:
        """Record ``t_source(target)``; a later statement overwrites."""
        self.trust[(statement.source, statement.target)] = statement

    def add_rating(self, rating: Rating) -> None:
        """Record ``r_agent(product)``; a later rating overwrites."""
        self.ratings[(rating.agent, rating.product)] = rating

    # -- partial-function views -------------------------------------------

    def trust_of(self, source: str) -> dict[str, float]:
        """Materialize the partial trust function ``t_source`` as a dict."""
        return {
            target: stmt.value
            for (src, target), stmt in self.trust.items()
            if src == source
        }

    def ratings_of(self, agent: str) -> dict[str, float]:
        """Materialize the partial rating function ``r_agent`` as a dict."""
        return {
            product: rating.value
            for (a, product), rating in self.ratings.items()
            if a == agent
        }

    def raters_of(self, product: str) -> dict[str, float]:
        """Inverse view: every agent's rating of *product*."""
        return {
            a: rating.value
            for (a, p), rating in self.ratings.items()
            if p == product
        }

    def iter_trust(self) -> Iterator[TrustStatement]:
        return iter(self.trust.values())

    def iter_ratings(self) -> Iterator[Rating]:
        return iter(self.ratings.values())

    # -- integrity ---------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`ValueError` on the first dangling reference."""
        for statement in self.trust.values():
            if statement.source not in self.agents:
                raise ValueError(f"trust from unknown agent {statement.source}")
            if statement.target not in self.agents:
                raise ValueError(f"trust toward unknown agent {statement.target}")
        for rating in self.ratings.values():
            if rating.agent not in self.agents:
                raise ValueError(f"rating by unknown agent {rating.agent}")
            if rating.product not in self.products:
                raise ValueError(f"rating of unknown product {rating.product}")

    # -- statistics ---------------------------------------------------------

    def summary(self) -> dict[str, float]:
        """Descriptive statistics used by dataset reports and tests."""
        n_agents = len(self.agents)
        n_products = len(self.products)
        return {
            "agents": n_agents,
            "products": n_products,
            "trust_statements": len(self.trust),
            "ratings": len(self.ratings),
            "trust_density": (
                len(self.trust) / (n_agents * (n_agents - 1))
                if n_agents > 1
                else 0.0
            ),
            "rating_density": (
                len(self.ratings) / (n_agents * n_products)
                if n_agents and n_products
                else 0.0
            ),
        }

    # -- subsetting ----------------------------------------------------------

    def restricted_to_agents(self, keep: Iterable[str]) -> "Dataset":
        """Return the induced sub-community over the agent URIs in *keep*.

        Products are retained wholesale (they are global knowledge);
        trust statements and ratings are filtered to the kept agents.
        """
        kept = set(keep)
        subset = Dataset(
            agents={uri: a for uri, a in self.agents.items() if uri in kept},
            products=dict(self.products),
        )
        for key, statement in self.trust.items():
            if statement.source in kept and statement.target in kept:
                subset.trust[key] = statement
        for key, rating in self.ratings.items():
            if rating.agent in kept:
                subset.ratings[key] = rating
        return subset


def descriptor_index(products: Mapping[str, Product]) -> dict[str, set[str]]:
    """Invert the descriptor assignment: topic identifier -> product ids.

    Used by content-based recommendation (§3.4's "categories the user has
    left untouched" scheme).
    """
    index: dict[str, set[str]] = {}
    for product in products.values():
        for topic in product.descriptors:
            index.setdefault(topic, set()).add(product.identifier)
    return index


def implicit_rating(agent: str, product: str) -> Rating:
    """Build the ``+1.0`` implicit rating the weblog miners of §4 produce."""
    return Rating(agent=agent, product=product, value=1.0)


def top_rated(
    ratings: Mapping[str, float], limit: Optional[int] = None
) -> list[tuple[str, float]]:
    """Products sorted by descending rating (ties broken by identifier)."""
    ordered = sorted(ratings.items(), key=lambda item: (-item[1], item[0]))
    return ordered if limit is None else ordered[:limit]
