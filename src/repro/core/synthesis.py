"""Rank synthesization (§3.4): merging trust rank and similarity rank.

The paper leaves this step as future work and sketches the design space:
"One must now merge trust rank and similarity rank into one single
measure, i.e., its overall rank weight."  We implement the natural
candidates so EX10 can compare them empirically:

* :class:`LinearBlend` — convex combination
  ``γ·trust + (1-γ)·similarity`` over normalized inputs; γ=0.5 weights the
  two pillars equally, γ=1 degenerates to trust-only, γ=0 to
  similarity-within-neighborhood.
* :class:`Multiplicative` — geometric interaction ``trust · similarity⁺``;
  a peer must score on *both* dimensions to matter.
* :class:`BordaCount` — rank-position voting, robust to the two signals'
  incomparable scales.
* :class:`TrustFilter` — the paper's minimal reading of §3.3: trust only
  gates admission; within the neighborhood the weight is similarity alone.

All strategies receive *normalized* trust ranks in ``[0, 1]`` and
similarities in ``[-1, 1]`` for the peers of one trust neighborhood, and
return non-negative overall rank weights (peers with non-positive merged
weight are dropped — a negatively correlated peer should not vote).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping

__all__ = [
    "BordaCount",
    "LinearBlend",
    "Multiplicative",
    "SynthesisStrategy",
    "TrustFilter",
    "strategy_by_name",
]


class SynthesisStrategy(ABC):
    """Interface: merge per-peer trust and similarity into rank weights."""

    name: str = "abstract"

    @abstractmethod
    def merge(
        self,
        trust: Mapping[str, float],
        similarity: Mapping[str, float],
    ) -> dict[str, float]:
        """Return strictly positive overall weights for voting peers.

        *trust* and *similarity* are keyed by peer; peers missing from
        *similarity* are treated as similarity 0.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class LinearBlend(SynthesisStrategy):
    """``γ·trust + (1-γ)·max(similarity, 0)`` — the convex combination."""

    name = "linear"

    def __init__(self, gamma: float = 0.5) -> None:
        if not 0.0 <= gamma <= 1.0:
            raise ValueError("gamma must lie in [0, 1]")
        self.gamma = gamma

    def merge(
        self,
        trust: Mapping[str, float],
        similarity: Mapping[str, float],
    ) -> dict[str, float]:
        merged = {}
        for peer, trust_rank in trust.items():
            sim = max(similarity.get(peer, 0.0), 0.0)
            weight = self.gamma * trust_rank + (1.0 - self.gamma) * sim
            if weight > 0.0:
                merged[peer] = weight
        return merged

    def __repr__(self) -> str:
        return f"LinearBlend(gamma={self.gamma})"


class Multiplicative(SynthesisStrategy):
    """``trust · max(similarity, 0)`` — both signals must be present."""

    name = "multiplicative"

    def merge(
        self,
        trust: Mapping[str, float],
        similarity: Mapping[str, float],
    ) -> dict[str, float]:
        merged = {}
        for peer, trust_rank in trust.items():
            weight = trust_rank * max(similarity.get(peer, 0.0), 0.0)
            if weight > 0.0:
                merged[peer] = weight
        return merged


class BordaCount(SynthesisStrategy):
    """Sum of Borda points from the two rankings.

    Each peer earns ``n - position`` points per ranking (best gets ``n``,
    worst gets 1); weights are the point totals normalized by ``2n`` so
    they stay in ``(0, 1]``.  Scale-free: only rank order matters.
    """

    name = "borda"

    def merge(
        self,
        trust: Mapping[str, float],
        similarity: Mapping[str, float],
    ) -> dict[str, float]:
        peers = list(trust)
        if not peers:
            return {}
        n = len(peers)
        points: dict[str, int] = {peer: 0 for peer in peers}
        for key in (trust, {p: similarity.get(p, 0.0) for p in peers}):
            ordered = sorted(peers, key=lambda p: (-key[p], p))
            for position, peer in enumerate(ordered):
                points[peer] += n - position
        return {peer: score / (2 * n) for peer, score in points.items() if score > 0}


class TrustFilter(SynthesisStrategy):
    """Trust gates admission only; weight is similarity within the gate."""

    name = "trust_filter"

    def merge(
        self,
        trust: Mapping[str, float],
        similarity: Mapping[str, float],
    ) -> dict[str, float]:
        merged = {}
        for peer in trust:
            sim = similarity.get(peer, 0.0)
            if sim > 0.0:
                merged[peer] = sim
        return merged


_STRATEGIES: dict[str, type[SynthesisStrategy]] = {
    LinearBlend.name: LinearBlend,
    Multiplicative.name: Multiplicative,
    BordaCount.name: BordaCount,
    TrustFilter.name: TrustFilter,
}


def strategy_by_name(name: str, **kwargs: float) -> SynthesisStrategy:
    """Instantiate a synthesis strategy by its registry name."""
    try:
        cls = _STRATEGIES[name]
    except KeyError:
        known = ", ".join(sorted(_STRATEGIES))
        raise ValueError(f"unknown strategy {name!r}; known: {known}") from None
    return cls(**kwargs)  # type: ignore[arg-type]
