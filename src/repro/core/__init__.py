"""The paper's primary contribution: trust-aware, taxonomy-driven CF."""

from .diversify import TopicDiversifier, intra_list_similarity, product_topic_profile
from .models import Agent, Dataset, Product, Rating, TrustStatement
from .neighborhood import NeighborhoodFormation, TrustNeighborhood
from .prediction import RatingPredictor, predict_rating
from .profiles import (
    DEFAULT_PROFILE_SCORE,
    TaxonomyProfileBuilder,
    descriptor_score_path,
    flat_category_profile,
    product_profile,
)
from .recommender import (
    ContentBasedExplorer,
    FallbackRecommender,
    PopularityRecommender,
    ProfileStore,
    PureCFRecommender,
    RandomRecommender,
    Recommendation,
    Recommender,
    SemanticWebRecommender,
    TrustOnlyRecommender,
)
from .similarity import cosine, pearson, profile_overlap, top_similar
from .stereotypes import (
    Stereotype,
    StereotypeModel,
    StereotypeRecommender,
    cluster_profiles,
)
from .synthesis import (
    BordaCount,
    LinearBlend,
    Multiplicative,
    SynthesisStrategy,
    TrustFilter,
    strategy_by_name,
)
from .taxonomy import Taxonomy, TaxonomyError, figure1_fragment

__all__ = [
    "Agent",
    "BordaCount",
    "ContentBasedExplorer",
    "DEFAULT_PROFILE_SCORE",
    "Dataset",
    "FallbackRecommender",
    "LinearBlend",
    "Multiplicative",
    "NeighborhoodFormation",
    "PopularityRecommender",
    "Product",
    "ProfileStore",
    "PureCFRecommender",
    "RandomRecommender",
    "Rating",
    "RatingPredictor",
    "Recommendation",
    "Recommender",
    "SemanticWebRecommender",
    "Stereotype",
    "StereotypeModel",
    "StereotypeRecommender",
    "SynthesisStrategy",
    "Taxonomy",
    "TaxonomyError",
    "TaxonomyProfileBuilder",
    "TopicDiversifier",
    "TrustFilter",
    "TrustNeighborhood",
    "TrustOnlyRecommender",
    "TrustStatement",
    "cluster_profiles",
    "cosine",
    "descriptor_score_path",
    "figure1_fragment",
    "flat_category_profile",
    "intra_list_similarity",
    "pearson",
    "predict_rating",
    "product_profile",
    "product_topic_profile",
    "profile_overlap",
    "strategy_by_name",
    "top_similar",
]
