"""End-to-end recommenders: the paper's pipeline and its baselines.

:class:`SemanticWebRecommender` realizes the full §3 pipeline for one
principal agent, computed *locally* as the paper requires:

1. **Trust neighborhood formation** (§3.2) — Appleseed ranks over the web
   of trust, thresholded/top-M (:mod:`repro.core.neighborhood`).
2. **Similarity-based filtering** (§3.3) — taxonomy profiles and
   Pearson/cosine similarity against each neighbor.
3. **Rank synthesization** (§3.4) — a pluggable merge strategy yields one
   overall rank weight per peer.
4. **Recommendation** — "every a_j voting for all its appreciated
   products b_k with its own rank weight" (the paper's primary proposal);
   products already rated by the principal are excluded.

Baselines for the experiments:

* :class:`PureCFRecommender` — centralized CF over *all* agents (no
  trust), with either taxonomy or raw product profiles.
* :class:`TrustOnlyRecommender` — Appleseed ranks as voting weights, no
  similarity at all (trust as a similarity *surrogate*, §3.2).
* :class:`ContentBasedExplorer` — the §3.4 content-based alternative:
  propose products from categories the principal "has left untouched
  until present" but that highly weighted peers appreciate.
* :class:`RandomRecommender` and :class:`PopularityRecommender` — floor
  and non-personalized references.
"""

from __future__ import annotations

import heapq
import random
from abc import ABC, abstractmethod
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..perf.matrix import ProfileMatrix

from ..obs import get_metrics
from ..trust.graph import TrustGraph
from ..util.sync import AtomicSwap, GuardedCache, ReentrantGuard
from .models import Dataset
from .neighborhood import NeighborhoodFormation, TrustNeighborhood
from .profiles import Profile, TaxonomyProfileBuilder, product_profile
from .similarity import Domain, cosine, pearson
from .synthesis import LinearBlend, SynthesisStrategy
from .taxonomy import Taxonomy

__all__ = [
    "ContentBasedExplorer",
    "FallbackRecommender",
    "PopularityRecommender",
    "ProfileStore",
    "PureCFRecommender",
    "RandomRecommender",
    "Recommendation",
    "Recommender",
    "SemanticWebRecommender",
    "TrustOnlyRecommender",
]


@dataclass(frozen=True, slots=True)
class Recommendation:
    """One recommended product with its aggregated score and supporters."""

    product: str
    score: float
    supporters: tuple[str, ...] = ()


class ProfileStore:
    """Lazily builds and caches taxonomy profiles for a community.

    Centralizing the cache matters: experiments recompute similarities for
    thousands of agent pairs and profile construction dominates without it.
    Call :meth:`invalidate` after mutating an agent's ratings.

    Both caches ride one :class:`ReentrantGuard` so the daemon's
    concurrent readers never observe a half-invalidated store: the
    profile dict is a :class:`GuardedCache` (atomic get-or-build) and
    the packed matrix an :class:`AtomicSwap` (publish-by-replacement).
    Re-entrancy matters because building the matrix builds profiles
    through the same guard.  Single-threaded behavior is unchanged.
    """

    def __init__(self, dataset: Dataset, builder: TaxonomyProfileBuilder) -> None:
        self.dataset = dataset
        self.builder = builder
        self._guard = ReentrantGuard("profile-store")
        self._cache: GuardedCache[str, Profile] = GuardedCache(
            "profiles", guard=self._guard
        )
        self._matrix: "AtomicSwap[ProfileMatrix]" = AtomicSwap(
            "profile-matrix", guard=self._guard
        )

    def profile(self, agent: str) -> Profile:
        """The taxonomy profile of *agent* (cached)."""
        return self._cache.get_or_build(agent, self._build_profile)

    def _build_profile(self, agent: str) -> Profile:
        ratings = self.dataset.ratings_of(agent)
        return self.builder.build(ratings, self.dataset.products)

    def matrix(self) -> "ProfileMatrix":
        """The whole community's profiles packed for the numpy engine.

        Built lazily on first use (the one call that pays the full
        O(community) profile construction) and published atomically;
        dropped by :meth:`invalidate`; requires numpy.
        """
        cached = self._matrix.get()
        if cached is not None:
            get_metrics().counter("similarity.matrix_cache.hit").inc()
            return cached
        return self._matrix.get_or_build(self._build_matrix)

    def _build_matrix(self) -> "ProfileMatrix":
        from ..perf.matrix import ProfileMatrix

        get_metrics().counter("similarity.matrix_cache.miss").inc()
        profiles = {agent: self.profile(agent) for agent in self.dataset.agents}
        return ProfileMatrix.from_profiles(profiles)

    def invalidate(self, agent: str | None = None) -> None:
        """Drop cached profiles (one agent, or all when *agent* is None).

        The packed matrix is dropped either way: its rows embed every
        agent's profile, so any single stale row poisons it.  Both drops
        happen under the shared guard, so a concurrent reader sees the
        store before or after the invalidation, never between.
        """
        with self._guard:
            self._matrix.clear()
            self._cache.invalidate(agent)


def _similarity_function(
    measure: str,
) -> Callable[[Mapping[str, float], Mapping[str, float], Domain], float]:
    if measure == "pearson":
        return pearson
    if measure == "cosine":
        return cosine
    raise ValueError(f"unknown similarity measure {measure!r}")


def _vote_scores(
    dataset: Dataset,
    weights: dict[str, float],
    exclude: set[str],
) -> tuple[dict[str, float], dict[str, list[str]]]:
    """Accumulate weighted product votes without ranking anything yet.

    Split out of :func:`_vote` so filters (e.g. the content-based
    explorer's untouched-category constraint) can narrow the candidate
    pool *before* any ranking work happens.
    """
    scores: dict[str, float] = {}
    supporters: dict[str, list[str]] = {}
    for peer, weight in weights.items():
        if weight <= 0.0:
            continue
        for product, value in dataset.ratings_of(peer).items():
            if value <= 0.0 or product in exclude:
                continue
            scores[product] = scores.get(product, 0.0) + weight
            supporters.setdefault(product, []).append(peer)
    return scores, supporters


def _rank_votes(
    scores: dict[str, float],
    supporters: dict[str, list[str]],
    limit: int,
) -> list[Recommendation]:
    """Top-*limit* recommendations from accumulated votes.

    Heap selection instead of a full sort: identical output to sorting
    by ``(-score, product)`` and truncating.
    """
    if limit < len(scores):
        ranked = heapq.nsmallest(
            limit, scores.items(), key=lambda kv: (-kv[1], kv[0])
        )
    else:
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
    return [
        Recommendation(
            product=product,
            score=score,
            supporters=tuple(sorted(supporters[product])),
        )
        for product, score in ranked
    ]


def _vote(
    dataset: Dataset,
    weights: dict[str, float],
    exclude: set[str],
    limit: int,
) -> list[Recommendation]:
    """Weighted product voting: the paper's primary §3.4 proposal."""
    scores, supporters = _vote_scores(dataset, weights, exclude)
    return _rank_votes(scores, supporters, limit)


class Recommender(ABC):
    """Common interface: top-N product recommendations for one agent."""

    @abstractmethod
    def recommend(self, agent: str, limit: int = 10) -> list[Recommendation]:
        """Return up to *limit* recommendations for *agent*, best first."""


@dataclass
class SemanticWebRecommender(Recommender):
    """The paper's full trust + taxonomy pipeline (see module docstring).

    All heavyweight state (trust graph, profile store) is built once in
    :meth:`from_dataset` and shared across calls; :meth:`recommend` runs
    the per-principal local computation.
    """

    dataset: Dataset
    graph: TrustGraph
    profiles: ProfileStore
    formation: NeighborhoodFormation = field(default_factory=NeighborhoodFormation)
    synthesis: SynthesisStrategy = field(default_factory=LinearBlend)
    similarity_measure: str = "pearson"
    similarity_domain: Domain = "union"
    engine: str = "auto"

    @classmethod
    def from_dataset(
        cls,
        dataset: Dataset,
        taxonomy: Taxonomy,
        formation: NeighborhoodFormation | None = None,
        synthesis: SynthesisStrategy | None = None,
        similarity_measure: str = "pearson",
        similarity_domain: Domain = "union",
        builder: TaxonomyProfileBuilder | None = None,
        engine: str = "auto",
    ) -> "SemanticWebRecommender":
        """Assemble the recommender from a community snapshot."""
        builder = builder or TaxonomyProfileBuilder(taxonomy)
        return cls(
            dataset=dataset,
            graph=TrustGraph.from_dataset(dataset),
            profiles=ProfileStore(dataset, builder),
            formation=formation or NeighborhoodFormation(engine=engine),
            synthesis=synthesis or LinearBlend(),
            similarity_measure=similarity_measure,
            similarity_domain=similarity_domain,
            engine=engine,
        )

    # -- pipeline stages, exposed for inspection and experiments ------------

    def neighborhood(self, agent: str) -> TrustNeighborhood:
        """Stage 1: the principal's trust neighborhood."""
        return self.formation.form(self.graph, agent)

    def similarities(
        self, agent: str, peers: set[str]
    ) -> dict[str, float]:
        """Stage 2: taxonomy-profile similarity to each peer.

        With the numpy engine the peers are scored through the profile
        store's packed community matrix in one kernel call; the python
        engine computes dict pairs (the oracle).  Results agree to 1e-9.
        """
        from ..perf.engine import resolve_engine

        own = self.profiles.profile(agent)
        if peers and resolve_engine(self.engine) == "numpy":
            from ..perf.kernels import similarity_many

            matrix = self.profiles.matrix()
            peer_list = sorted(peers)
            try:
                rows = matrix.rows_for(peer_list)
            except KeyError:
                pass  # peers outside the dataset: fall through to python
            else:
                values = similarity_many(
                    own,
                    matrix,
                    measure=self.similarity_measure,
                    domain=self.similarity_domain,
                    rows=rows,
                )
                return {
                    peer: float(value) for peer, value in zip(peer_list, values)
                }
        func = _similarity_function(self.similarity_measure)
        return {
            peer: func(own, self.profiles.profile(peer), self.similarity_domain)
            for peer in peers
        }

    def peer_weights(self, agent: str) -> dict[str, float]:
        """Stages 1-3: overall rank weight per voting peer."""
        hood = self.neighborhood(agent)
        sims = self.similarities(agent, hood.members())
        return self.synthesis.merge(hood.normalized, sims)

    def recommend(self, agent: str, limit: int = 10) -> list[Recommendation]:
        if agent not in self.dataset.agents:
            raise KeyError(f"unknown agent {agent!r}")
        weights = self.peer_weights(agent)
        exclude = set(self.dataset.ratings_of(agent))
        return _vote(self.dataset, weights, exclude, limit)

    def invalidate_cache(self, agent: str | None = None) -> None:
        """Drop cached profiles (and the packed matrix) after mutation.

        Long-lived agents keep ingesting ratings while serving queries;
        call this after every dataset mutation — for one *agent* when a
        single rating arrived, with no argument after bulk changes.
        """
        self.profiles.invalidate(agent)


@dataclass
class PureCFRecommender(Recommender):
    """Centralized collaborative filtering over the whole community.

    The generic approach the paper contrasts itself against: similarity is
    computed against *every* other agent (no trust pre-filtering), the
    ``neighbors`` most similar peers vote with their similarity as weight.
    ``representation`` chooses taxonomy profiles ("taxonomy") or classic
    product-rating vectors ("product", with intersection-domain Pearson).
    """

    dataset: Dataset
    profiles: ProfileStore | None = None
    representation: str = "taxonomy"
    similarity_measure: str | None = None
    neighbors: int = 20
    engine: str = "auto"
    _product_profiles: GuardedCache[str, Profile] = field(
        default_factory=lambda: GuardedCache("product-profiles"),
        init=False,
        repr=False,
        compare=False,
    )
    _product_matrix: "AtomicSwap[ProfileMatrix]" = field(
        default_factory=lambda: AtomicSwap("product-matrix"),
        init=False,
        repr=False,
        compare=False,
    )

    def __post_init__(self) -> None:
        if self.representation not in ("taxonomy", "product"):
            raise ValueError(f"unknown representation {self.representation!r}")
        if self.representation == "taxonomy" and self.profiles is None:
            raise ValueError("taxonomy representation requires a ProfileStore")
        if self.neighbors < 1:
            raise ValueError("neighbors must be at least 1")
        if self.similarity_measure is None:
            # Pearson suits dense taxonomy profiles; implicit +1.0 product
            # vectors have zero variance on co-rated items, which makes
            # Pearson degenerate, so product mode defaults to cosine.
            measure = "pearson" if self.representation == "taxonomy" else "cosine"
            self.similarity_measure = measure

    def _profile(self, agent: str) -> Profile:
        if self.representation == "taxonomy":
            assert self.profiles is not None
            return self.profiles.profile(agent)
        return self._product_profiles.get_or_build(agent, self._build_product_profile)

    def _build_product_profile(self, agent: str) -> Profile:
        return product_profile(self.dataset.ratings_of(agent))

    def _matrix(self) -> "ProfileMatrix":
        """The packed community matrix for the active representation."""
        if self.representation == "taxonomy":
            assert self.profiles is not None
            return self.profiles.matrix()
        return self._product_matrix.get_or_build(self._build_product_matrix)

    def _build_product_matrix(self) -> "ProfileMatrix":
        from ..perf.matrix import ProfileMatrix

        profiles = {agent: self._profile(agent) for agent in self.dataset.agents}
        return ProfileMatrix.from_profiles(profiles)

    def invalidate_cache(self) -> None:
        """Drop every cached view of the dataset's ratings.

        Call after mutating the dataset.  Taxonomy-mode profiles and the
        packed community matrix live in the shared :class:`ProfileStore`,
        so it is invalidated too — dropping only the product-mode caches
        left taxonomy-mode queries serving stale scores (RL200).
        """
        self._product_profiles.invalidate()
        self._product_matrix.clear()
        if self.profiles is not None:
            self.profiles.invalidate()

    def _domain(self) -> Domain:
        if self.representation == "taxonomy":
            return "union"
        # Union-domain cosine over implicit vectors reduces to the
        # normalized co-rating count; Pearson keeps the classic
        # co-rated-items convention.
        return "union" if self.similarity_measure == "cosine" else "intersection"

    def peer_weights(self, agent: str) -> dict[str, float]:
        """Top-k most similar peers with positive similarity.

        This is the all-pairs hot path: with the numpy engine the whole
        community is scored in one kernel call against the cached
        :class:`~repro.perf.matrix.ProfileMatrix`, with inverted-index
        pruning of zero-overlap candidates where that is exact.
        """
        assert self.similarity_measure is not None
        domain = self._domain()
        own = self._profile(agent)
        from ..perf.engine import resolve_engine

        if resolve_engine(self.engine) == "numpy":
            from ..perf.engine import community_scores

            matrix = self._matrix()
            values = community_scores(
                own, matrix, measure=self.similarity_measure, domain=domain
            )
            scored = [
                (peer, float(value))
                for peer, value in zip(matrix.ids, values)
                if peer != agent and value > 0.0
            ]
        else:
            func = _similarity_function(self.similarity_measure)
            scored = []
            for peer in self.dataset.agents:
                if peer == agent:
                    continue
                value = func(own, self._profile(peer), domain)
                if value > 0.0:
                    scored.append((peer, value))
        # Heap-select the k best instead of sorting every positive peer.
        ranked = heapq.nsmallest(
            self.neighbors, scored, key=lambda kv: (-kv[1], kv[0])
        )
        return dict(ranked)

    def recommend(self, agent: str, limit: int = 10) -> list[Recommendation]:
        weights = self.peer_weights(agent)
        exclude = set(self.dataset.ratings_of(agent))
        return _vote(self.dataset, weights, exclude, limit)


@dataclass
class TrustOnlyRecommender(Recommender):
    """Trust ranks as voting weights, no similarity computation at all."""

    dataset: Dataset
    graph: TrustGraph
    formation: NeighborhoodFormation = field(default_factory=NeighborhoodFormation)

    def recommend(self, agent: str, limit: int = 10) -> list[Recommendation]:
        hood = self.formation.form(self.graph, agent)
        exclude = set(self.dataset.ratings_of(agent))
        return _vote(self.dataset, hood.normalized, exclude, limit)


@dataclass
class ContentBasedExplorer(Recommender):
    """§3.4's exploratory scheme: recommend from *untouched* categories.

    "One might propose agent a_i products from categories that a_i has
    left untouched until present … incentive for trying new product groups
    becomes created."  Peers vote as in the main pipeline, but only
    products whose descriptors are all outside the principal's profile
    support survive the filter.
    """

    inner: SemanticWebRecommender

    def recommend(self, agent: str, limit: int = 10) -> list[Recommendation]:
        weights = self.inner.peer_weights(agent)
        exclude = set(self.inner.dataset.ratings_of(agent))
        touched = set(self.inner.profiles.profile(agent))
        # Filter to untouched-category products *before* ranking: the
        # freshness test commutes with ranking, so this returns exactly
        # what ranking the full catalogue and filtering afterwards would,
        # without materializing (or sorting) the whole vote ranking.
        scores, supporters = _vote_scores(self.inner.dataset, weights, exclude)
        products = self.inner.dataset.products
        fresh_scores: dict[str, float] = {}
        for identifier, score in scores.items():
            product = products.get(identifier)
            if product is None or not product.descriptors:
                continue
            if product.descriptors.isdisjoint(touched):
                fresh_scores[identifier] = score
        return _rank_votes(fresh_scores, supporters, limit)


@dataclass
class RandomRecommender(Recommender):
    """Uniformly random unrated products — the floor every method must beat."""

    dataset: Dataset
    seed: int = 0

    def recommend(self, agent: str, limit: int = 10) -> list[Recommendation]:
        exclude = set(self.dataset.ratings_of(agent))
        pool = sorted(p for p in self.dataset.products if p not in exclude)
        # Seeding with a string is deterministic across processes (unlike
        # hash() of a str, which PYTHONHASHSEED randomizes).
        rng = random.Random(f"{self.seed}:{agent}")
        rng.shuffle(pool)
        return [Recommendation(product=p, score=0.0) for p in pool[:limit]]


@dataclass
class FallbackRecommender(Recommender):
    """Cold-start combinator: try *primary*, fall back when it is short.

    New agents have no trust statements and often no ratings, so the
    trust-aware pipeline legitimately returns nothing for them (§3.2's
    subjectivity cuts both ways).  A deployment still has to answer; the
    standard answer is a non-personalized fallback.  The combinator fills
    the remainder of the list from *fallback*, skipping duplicates, and
    marks nothing — callers can distinguish provenance via supporters
    (fallback items from :class:`PopularityRecommender`/
    :class:`RandomRecommender` carry no supporters).
    """

    primary: Recommender
    fallback: Recommender

    def recommend(self, agent: str, limit: int = 10) -> list[Recommendation]:
        items = list(self.primary.recommend(agent, limit=limit))
        if len(items) >= limit:
            return items[:limit]
        have = {item.product for item in items}
        # A single fetch of limit + len(have) can under-fill when the
        # fallback's list overlaps `have` more than len(have) times (e.g.
        # a merging fallback that emits duplicate products).  Re-fetch
        # with a doubled limit until the list fills or the fallback is
        # exhausted; deterministic fallbacks return prefix-consistent
        # lists, so `have` dedups across fetches.
        fetch = limit + len(have)
        while len(items) < limit:
            batch = self.fallback.recommend(agent, limit=fetch)
            for item in batch:
                if item.product not in have:
                    items.append(item)
                    have.add(item.product)
                    if len(items) >= limit:
                        break
            if len(batch) < fetch:
                break  # the fallback has nothing more to offer
            fetch *= 2
        return items


@dataclass
class PopularityRecommender(Recommender):
    """Most-rated products first — the non-personalized reference."""

    dataset: Dataset

    def recommend(self, agent: str, limit: int = 10) -> list[Recommendation]:
        counts: dict[str, int] = {}
        for rating in self.dataset.iter_ratings():
            if rating.is_positive and rating.agent != agent:
                counts[rating.product] = counts.get(rating.product, 0) + 1
        exclude = set(self.dataset.ratings_of(agent))
        ranked = sorted(
            ((p, c) for p, c in counts.items() if p not in exclude),
            key=lambda kv: (-kv[1], kv[0]),
        )
        return [
            Recommendation(product=p, score=float(c)) for p, c in ranked[:limit]
        ]
