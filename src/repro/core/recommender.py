"""End-to-end recommenders: the paper's pipeline and its baselines.

:class:`SemanticWebRecommender` realizes the full §3 pipeline for one
principal agent, computed *locally* as the paper requires:

1. **Trust neighborhood formation** (§3.2) — Appleseed ranks over the web
   of trust, thresholded/top-M (:mod:`repro.core.neighborhood`).
2. **Similarity-based filtering** (§3.3) — taxonomy profiles and
   Pearson/cosine similarity against each neighbor.
3. **Rank synthesization** (§3.4) — a pluggable merge strategy yields one
   overall rank weight per peer.
4. **Recommendation** — "every a_j voting for all its appreciated
   products b_k with its own rank weight" (the paper's primary proposal);
   products already rated by the principal are excluded.

Baselines for the experiments:

* :class:`PureCFRecommender` — centralized CF over *all* agents (no
  trust), with either taxonomy or raw product profiles.
* :class:`TrustOnlyRecommender` — Appleseed ranks as voting weights, no
  similarity at all (trust as a similarity *surrogate*, §3.2).
* :class:`ContentBasedExplorer` — the §3.4 content-based alternative:
  propose products from categories the principal "has left untouched
  until present" but that highly weighted peers appreciate.
* :class:`RandomRecommender` and :class:`PopularityRecommender` — floor
  and non-personalized references.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..trust.graph import TrustGraph
from .models import Dataset
from .neighborhood import NeighborhoodFormation, TrustNeighborhood
from .profiles import Profile, TaxonomyProfileBuilder, product_profile
from .similarity import Domain, cosine, pearson
from .synthesis import LinearBlend, SynthesisStrategy
from .taxonomy import Taxonomy

__all__ = [
    "ContentBasedExplorer",
    "FallbackRecommender",
    "PopularityRecommender",
    "ProfileStore",
    "PureCFRecommender",
    "RandomRecommender",
    "Recommendation",
    "Recommender",
    "SemanticWebRecommender",
    "TrustOnlyRecommender",
]


@dataclass(frozen=True, slots=True)
class Recommendation:
    """One recommended product with its aggregated score and supporters."""

    product: str
    score: float
    supporters: tuple[str, ...] = ()


class ProfileStore:
    """Lazily builds and caches taxonomy profiles for a community.

    Centralizing the cache matters: experiments recompute similarities for
    thousands of agent pairs and profile construction dominates without it.
    Call :meth:`invalidate` after mutating an agent's ratings.
    """

    def __init__(self, dataset: Dataset, builder: TaxonomyProfileBuilder) -> None:
        self.dataset = dataset
        self.builder = builder
        self._cache: dict[str, Profile] = {}

    def profile(self, agent: str) -> Profile:
        """The taxonomy profile of *agent* (cached)."""
        cached = self._cache.get(agent)
        if cached is None:
            ratings = self.dataset.ratings_of(agent)
            cached = self.builder.build(ratings, self.dataset.products)
            self._cache[agent] = cached
        return cached

    def invalidate(self, agent: str | None = None) -> None:
        """Drop cached profiles (one agent, or all when *agent* is None)."""
        if agent is None:
            self._cache.clear()
        else:
            self._cache.pop(agent, None)


def _similarity_function(measure: str):
    if measure == "pearson":
        return pearson
    if measure == "cosine":
        return cosine
    raise ValueError(f"unknown similarity measure {measure!r}")


def _vote(
    dataset: Dataset,
    weights: dict[str, float],
    exclude: set[str],
    limit: int,
) -> list[Recommendation]:
    """Weighted product voting: the paper's primary §3.4 proposal."""
    scores: dict[str, float] = {}
    supporters: dict[str, list[str]] = {}
    for peer, weight in weights.items():
        if weight <= 0.0:
            continue
        for product, value in dataset.ratings_of(peer).items():
            if value <= 0.0 or product in exclude:
                continue
            scores[product] = scores.get(product, 0.0) + weight
            supporters.setdefault(product, []).append(peer)
    ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
    return [
        Recommendation(
            product=product,
            score=score,
            supporters=tuple(sorted(supporters[product])),
        )
        for product, score in ranked[:limit]
    ]


class Recommender(ABC):
    """Common interface: top-N product recommendations for one agent."""

    @abstractmethod
    def recommend(self, agent: str, limit: int = 10) -> list[Recommendation]:
        """Return up to *limit* recommendations for *agent*, best first."""


@dataclass
class SemanticWebRecommender(Recommender):
    """The paper's full trust + taxonomy pipeline (see module docstring).

    All heavyweight state (trust graph, profile store) is built once in
    :meth:`from_dataset` and shared across calls; :meth:`recommend` runs
    the per-principal local computation.
    """

    dataset: Dataset
    graph: TrustGraph
    profiles: ProfileStore
    formation: NeighborhoodFormation = field(default_factory=NeighborhoodFormation)
    synthesis: SynthesisStrategy = field(default_factory=LinearBlend)
    similarity_measure: str = "pearson"
    similarity_domain: Domain = "union"

    @classmethod
    def from_dataset(
        cls,
        dataset: Dataset,
        taxonomy: Taxonomy,
        formation: NeighborhoodFormation | None = None,
        synthesis: SynthesisStrategy | None = None,
        similarity_measure: str = "pearson",
        similarity_domain: Domain = "union",
        builder: TaxonomyProfileBuilder | None = None,
    ) -> "SemanticWebRecommender":
        """Assemble the recommender from a community snapshot."""
        builder = builder or TaxonomyProfileBuilder(taxonomy)
        return cls(
            dataset=dataset,
            graph=TrustGraph.from_dataset(dataset),
            profiles=ProfileStore(dataset, builder),
            formation=formation or NeighborhoodFormation(),
            synthesis=synthesis or LinearBlend(),
            similarity_measure=similarity_measure,
            similarity_domain=similarity_domain,
        )

    # -- pipeline stages, exposed for inspection and experiments ------------

    def neighborhood(self, agent: str) -> TrustNeighborhood:
        """Stage 1: the principal's trust neighborhood."""
        return self.formation.form(self.graph, agent)

    def similarities(
        self, agent: str, peers: set[str]
    ) -> dict[str, float]:
        """Stage 2: taxonomy-profile similarity to each peer."""
        func = _similarity_function(self.similarity_measure)
        own = self.profiles.profile(agent)
        return {
            peer: func(own, self.profiles.profile(peer), self.similarity_domain)
            for peer in peers
        }

    def peer_weights(self, agent: str) -> dict[str, float]:
        """Stages 1-3: overall rank weight per voting peer."""
        hood = self.neighborhood(agent)
        sims = self.similarities(agent, hood.members())
        return self.synthesis.merge(hood.normalized, sims)

    def recommend(self, agent: str, limit: int = 10) -> list[Recommendation]:
        if agent not in self.dataset.agents:
            raise KeyError(f"unknown agent {agent!r}")
        weights = self.peer_weights(agent)
        exclude = set(self.dataset.ratings_of(agent))
        return _vote(self.dataset, weights, exclude, limit)


@dataclass
class PureCFRecommender(Recommender):
    """Centralized collaborative filtering over the whole community.

    The generic approach the paper contrasts itself against: similarity is
    computed against *every* other agent (no trust pre-filtering), the
    ``neighbors`` most similar peers vote with their similarity as weight.
    ``representation`` chooses taxonomy profiles ("taxonomy") or classic
    product-rating vectors ("product", with intersection-domain Pearson).
    """

    dataset: Dataset
    profiles: ProfileStore | None = None
    representation: str = "taxonomy"
    similarity_measure: str | None = None
    neighbors: int = 20

    def __post_init__(self) -> None:
        if self.representation not in ("taxonomy", "product"):
            raise ValueError(f"unknown representation {self.representation!r}")
        if self.representation == "taxonomy" and self.profiles is None:
            raise ValueError("taxonomy representation requires a ProfileStore")
        if self.neighbors < 1:
            raise ValueError("neighbors must be at least 1")
        if self.similarity_measure is None:
            # Pearson suits dense taxonomy profiles; implicit +1.0 product
            # vectors have zero variance on co-rated items, which makes
            # Pearson degenerate, so product mode defaults to cosine.
            measure = "pearson" if self.representation == "taxonomy" else "cosine"
            self.similarity_measure = measure

    def _profile(self, agent: str) -> Profile:
        if self.representation == "taxonomy":
            assert self.profiles is not None
            return self.profiles.profile(agent)
        return product_profile(self.dataset.ratings_of(agent))

    def peer_weights(self, agent: str) -> dict[str, float]:
        """Top-k most similar peers with positive similarity."""
        assert self.similarity_measure is not None
        func = _similarity_function(self.similarity_measure)
        if self.representation == "taxonomy":
            domain: Domain = "union"
        else:
            # Union-domain cosine over implicit vectors reduces to the
            # normalized co-rating count; Pearson keeps the classic
            # co-rated-items convention.
            domain = "union" if self.similarity_measure == "cosine" else "intersection"
        own = self._profile(agent)
        scored = []
        for peer in self.dataset.agents:
            if peer == agent:
                continue
            value = func(own, self._profile(peer), domain)
            if value > 0.0:
                scored.append((peer, value))
        scored.sort(key=lambda kv: (-kv[1], kv[0]))
        return dict(scored[: self.neighbors])

    def recommend(self, agent: str, limit: int = 10) -> list[Recommendation]:
        weights = self.peer_weights(agent)
        exclude = set(self.dataset.ratings_of(agent))
        return _vote(self.dataset, weights, exclude, limit)


@dataclass
class TrustOnlyRecommender(Recommender):
    """Trust ranks as voting weights, no similarity computation at all."""

    dataset: Dataset
    graph: TrustGraph
    formation: NeighborhoodFormation = field(default_factory=NeighborhoodFormation)

    def recommend(self, agent: str, limit: int = 10) -> list[Recommendation]:
        hood = self.formation.form(self.graph, agent)
        exclude = set(self.dataset.ratings_of(agent))
        return _vote(self.dataset, hood.normalized, exclude, limit)


@dataclass
class ContentBasedExplorer(Recommender):
    """§3.4's exploratory scheme: recommend from *untouched* categories.

    "One might propose agent a_i products from categories that a_i has
    left untouched until present … incentive for trying new product groups
    becomes created."  Peers vote as in the main pipeline, but only
    products whose descriptors are all outside the principal's profile
    support survive the filter.
    """

    inner: SemanticWebRecommender

    def recommend(self, agent: str, limit: int = 10) -> list[Recommendation]:
        weights = self.inner.peer_weights(agent)
        exclude = set(self.inner.dataset.ratings_of(agent))
        touched = set(self.inner.profiles.profile(agent))
        candidates = _vote(self.inner.dataset, weights, exclude, limit=10**9)
        fresh = []
        for rec in candidates:
            product = self.inner.dataset.products.get(rec.product)
            if product is None or not product.descriptors:
                continue
            if product.descriptors.isdisjoint(touched):
                fresh.append(rec)
            if len(fresh) >= limit:
                break
        return fresh


@dataclass
class RandomRecommender(Recommender):
    """Uniformly random unrated products — the floor every method must beat."""

    dataset: Dataset
    seed: int = 0

    def recommend(self, agent: str, limit: int = 10) -> list[Recommendation]:
        exclude = set(self.dataset.ratings_of(agent))
        pool = sorted(p for p in self.dataset.products if p not in exclude)
        # Seeding with a string is deterministic across processes (unlike
        # hash() of a str, which PYTHONHASHSEED randomizes).
        rng = random.Random(f"{self.seed}:{agent}")
        rng.shuffle(pool)
        return [Recommendation(product=p, score=0.0) for p in pool[:limit]]


@dataclass
class FallbackRecommender(Recommender):
    """Cold-start combinator: try *primary*, fall back when it is short.

    New agents have no trust statements and often no ratings, so the
    trust-aware pipeline legitimately returns nothing for them (§3.2's
    subjectivity cuts both ways).  A deployment still has to answer; the
    standard answer is a non-personalized fallback.  The combinator fills
    the remainder of the list from *fallback*, skipping duplicates, and
    marks nothing — callers can distinguish provenance via supporters
    (fallback items from :class:`PopularityRecommender`/
    :class:`RandomRecommender` carry no supporters).
    """

    primary: Recommender
    fallback: Recommender

    def recommend(self, agent: str, limit: int = 10) -> list[Recommendation]:
        items = list(self.primary.recommend(agent, limit=limit))
        if len(items) >= limit:
            return items[:limit]
        have = {item.product for item in items}
        for item in self.fallback.recommend(agent, limit=limit + len(have)):
            if item.product not in have:
                items.append(item)
                have.add(item.product)
            if len(items) >= limit:
                break
        return items


@dataclass
class PopularityRecommender(Recommender):
    """Most-rated products first — the non-personalized reference."""

    dataset: Dataset

    def recommend(self, agent: str, limit: int = 10) -> list[Recommendation]:
        counts: dict[str, int] = {}
        for rating in self.dataset.iter_ratings():
            if rating.is_positive and rating.agent != agent:
                counts[rating.product] = counts.get(rating.product, 0) + 1
        exclude = set(self.dataset.ratings_of(agent))
        ranked = sorted(
            ((p, c) for p, c in counts.items() if p not in exclude),
            key=lambda kv: (-kv[1], kv[0]),
        )
        return [
            Recommendation(product=p, score=float(c)) for p, c in ranked[:limit]
        ]
