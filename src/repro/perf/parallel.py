"""Deterministic multi-core fan-out for experiment sweeps.

The experiment suite (EX05/EX06/EX08 style) is embarrassingly parallel
over principals: each agent's profile build or evaluation is independent
of every other's.  :class:`ParallelExperimentRunner` fans such work out
over a :class:`~concurrent.futures.ProcessPoolExecutor` while keeping
the results *byte-identical* to a serial run:

* results are merged in **submission order**, never completion order, so
  aggregation sees the exact sequence a serial loop would produce;
* per-item seeds are derived from ``(base seed, item index)`` via string
  seeding (stable across processes and ``PYTHONHASHSEED``), so random
  draws do not depend on which worker handles an item;
* the serial fallback runs the same function in the same order, so
  ``mode="serial"`` vs ``mode="process"`` is a pure scheduling choice.

Workers receive their tasks by pickling, so task functions must be
module-level callables and task payloads picklable — true for all of
:mod:`repro.core` (plain dataclasses over dicts).
"""

from __future__ import annotations

import os
import random
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import TypeVar

from ..obs import get_metrics, get_tracer

__all__ = ["ParallelExperimentRunner", "derive_seed", "split_evenly"]

Item = TypeVar("Item")
Result = TypeVar("Result")


def derive_seed(seed: int, index: int) -> int:
    """A per-item seed that is stable across processes and worker counts.

    String seeding keeps this independent of ``PYTHONHASHSEED`` (the same
    trick :class:`repro.core.recommender.RandomRecommender` uses).
    """
    return random.Random(f"{seed}:{index}").getrandbits(63)


def split_evenly(items: Sequence[Item], parts: int) -> list[list[Item]]:
    """Split *items* into at most *parts* contiguous, near-equal chunks.

    Contiguity is what keeps chunked parallel runs order-identical to
    serial ones: concatenating the chunk results in chunk order restores
    the original item order regardless of how many workers ran.
    """
    parts = max(1, min(parts, len(items)) if items else 1)
    base, extra = divmod(len(items), parts)
    chunks: list[list[Item]] = []
    start = 0
    for part in range(parts):
        size = base + (1 if part < extra else 0)
        chunks.append(list(items[start : start + size]))
        start += size
    return [chunk for chunk in chunks if chunk]


def _call_with_seed(
    func: Callable[[Item, int], Result], pair: tuple[Item, int]
) -> Result:
    item, seed = pair
    return func(item, seed)


@dataclass
class ParallelExperimentRunner:
    """Order-preserving parallel map with a deterministic serial fallback.

    Parameters
    ----------
    max_workers:
        Process count; ``None`` uses ``os.cpu_count()``.
    mode:
        ``"process"`` forces the pool, ``"serial"`` forces in-process
        execution, ``"auto"`` uses the pool only when it can help
        (more than one worker and more than one item).
    chunksize:
        Items shipped to a worker per pickle round-trip.
    """

    max_workers: int | None = None
    mode: str = "auto"
    chunksize: int = 1

    def __post_init__(self) -> None:
        if self.mode not in ("auto", "serial", "process"):
            raise ValueError(f"unknown runner mode {self.mode!r}")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if self.chunksize < 1:
            raise ValueError("chunksize must be at least 1")

    def effective_workers(self) -> int:
        """The worker count a ``map`` call would actually use."""
        if self.mode == "serial":
            return 1
        return self.max_workers or os.cpu_count() or 1

    def map(self, func: Callable[[Item], Result], items: Iterable[Item]) -> list[Result]:
        """``[func(item) for item in items]``, possibly on many cores.

        Output order always equals input order; a pool is an internal
        detail that never leaks into results.
        """
        work = list(items)
        workers = self.effective_workers()
        serial = self.mode == "serial" or (
            self.mode != "process" and (workers <= 1 or len(work) <= 1)
        )
        pool_workers = 1 if serial else min(workers, max(1, len(work)))
        # The span and counters are recorded on the parent side only:
        # pool workers run in fresh processes bound to the null tracer,
        # so the fan-out appears as one span, never as corrupted nests.
        with get_tracer().span(
            "parallel.map",
            items=len(work),
            workers=pool_workers,
            mode="serial" if serial else "process",
        ):
            metrics = get_metrics()
            metrics.counter("parallel.maps").inc()
            metrics.counter("parallel.items").inc(len(work))
            metrics.gauge("parallel.workers").set(pool_workers)
            if serial:
                return [func(item) for item in work]
            with ProcessPoolExecutor(max_workers=pool_workers) as pool:
                return list(pool.map(func, work, chunksize=self.chunksize))

    def map_seeded(
        self,
        func: Callable[[Item, int], Result],
        items: Iterable[Item],
        seed: int = 0,
    ) -> list[Result]:
        """Like :meth:`map`, passing each call a derived per-item seed.

        ``func(item, derive_seed(seed, index))`` — the seed depends only
        on the base seed and the item's position, never on scheduling.
        """
        work = list(items)
        pairs = [(item, derive_seed(seed, index)) for index, item in enumerate(work)]
        return self.map(partial(_call_with_seed, func), pairs)

    def map_chunked(
        self,
        func: Callable[[list[Item]], list[Result]],
        items: Sequence[Item],
    ) -> list[Result]:
        """Fan contiguous chunks out to workers and re-concatenate.

        For tasks whose payload (dataset, recommender) dominates the
        pickle cost: one payload copy per chunk instead of per item.
        *func* maps a chunk to a result list of the same length.
        """
        results: list[Result] = []
        for chunk_result in self.map(func, split_evenly(items, self.effective_workers())):
            results.extend(chunk_result)
        return results
