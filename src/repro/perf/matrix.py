"""Packed profile matrices for the vectorized similarity engine.

The pure-Python similarity path (:mod:`repro.core.similarity`) computes
Pearson/cosine one ``dict`` pair at a time — O(|profile|) hashing per
pair, re-done for every principal.  At community scale (§2's
"computational complexity" research issue) the same work phrases as a
handful of matrix-vector products over a packed representation:

* :class:`TopicVocabulary` interns topic identifiers into dense column
  indices, shared across matrices so profiles from different sources
  line up;
* :class:`ProfileMatrix` packs one community's sparse profiles into a
  dense float64 matrix plus a *support mask*, with row sums, squared
  sums, norms and support sizes precomputed once, and an inverted
  topic→rows index used to prune zero-overlap candidates before any
  kernel runs.

The mask records *key presence*, not non-zero value: a profile may carry
an explicit ``0.0`` score, which counts toward the union/intersection
domains of :mod:`repro.core.similarity` but contributes nothing to dot
products.  Keeping presence separate is what lets the vectorized kernels
reproduce the dict-based oracle exactly.

Dense storage is deliberate: at the community sizes the experiments run
(hundreds to low thousands of agents, taxonomy vocabularies of a few
thousand topics) a dense float64 block is a few dozen MB at worst and
BLAS-backed matmuls beat scipy-free CSR emulation.  The support mask
plays the CSR indptr/indices role for domain bookkeeping.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from ..util.sync import AtomicSwap

__all__ = ["ProfileMatrix", "TopicVocabulary"]


class TopicVocabulary:
    """Interns topic identifiers into dense column indices.

    Intern order defines the column order; lookups are dict-speed.  A
    vocabulary can be shared by several matrices (e.g. one per community
    shard) so their columns stay aligned.
    """

    __slots__ = ("_index",)

    def __init__(self, topics: Iterable[str] = ()) -> None:
        self._index: dict[str, int] = {}
        for topic in topics:
            self.intern(topic)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, topic: str) -> bool:
        return topic in self._index

    def intern(self, topic: str) -> int:
        """Column index for *topic*, assigning the next free one if new."""
        index = self._index.get(topic)
        if index is None:
            index = len(self._index)
            self._index[topic] = index
        return index

    def index_of(self, topic: str) -> int | None:
        """Column index for *topic*, or ``None`` when never interned."""
        return self._index.get(topic)

    @property
    def topics(self) -> list[str]:
        """All interned topics in column order."""
        return list(self._index)


class ProfileMatrix:
    """One community's sparse profiles packed into dense numpy arrays.

    Rows follow ``ids`` (sorted identifier order by default, for
    determinism); columns follow the vocabulary's intern order.  All
    per-row aggregates the similarity kernels need are precomputed here
    so repeated ``*_many`` calls against the same community do no
    per-profile Python work at all.
    """

    def __init__(
        self,
        ids: Sequence[str],
        vocabulary: TopicVocabulary,
        dense: np.ndarray,
        mask: np.ndarray,
    ) -> None:
        self.ids: list[str] = list(ids)
        self.vocabulary = vocabulary
        self.dense = dense
        self.mask = mask
        self._row_of = {identifier: i for i, identifier in enumerate(self.ids)}
        if len(self._row_of) != len(self.ids):
            raise ValueError("profile identifiers must be unique")
        # Per-row aggregates over each profile's own coordinates.
        self.support = mask.sum(axis=1)  # key count (presence, not non-zero)
        self.row_sum = dense.sum(axis=1)
        self.row_sumsq = (dense * dense).sum(axis=1)
        self.row_norm = np.sqrt(self.row_sumsq)
        # Lazy derived views, published atomically so daemon threads
        # racing on first use each see either nothing or the final array.
        self._dense_sq: AtomicSwap[np.ndarray] = AtomicSwap("dense-sq")
        self._topic_rows: AtomicSwap[list[np.ndarray]] = AtomicSwap("topic-rows")

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_profiles(
        cls,
        profiles: Mapping[str, Mapping[str, float]],
        vocabulary: TopicVocabulary | None = None,
        ids: Sequence[str] | None = None,
    ) -> "ProfileMatrix":
        """Pack *profiles* (id -> sparse vector) into a matrix.

        Row order is ``sorted(profiles)`` unless *ids* is given.  Passing
        a shared *vocabulary* aligns columns with other matrices; new
        topics are interned as encountered.
        """
        row_ids = sorted(profiles) if ids is None else list(ids)
        vocab = vocabulary if vocabulary is not None else TopicVocabulary()
        entries: list[tuple[int, int, float]] = []
        for row, identifier in enumerate(row_ids):
            for topic, value in profiles[identifier].items():
                entries.append((row, vocab.intern(topic), float(value)))
        dense = np.zeros((len(row_ids), len(vocab)))
        mask = np.zeros((len(row_ids), len(vocab)))
        for row, col, value in entries:
            dense[row, col] = value
            mask[row, col] = 1.0
        return cls(row_ids, vocab, dense, mask)

    # -- shape and lookups ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.ids)

    @property
    def width(self) -> int:
        """Number of columns (may trail a shared, still-growing vocabulary)."""
        return self.dense.shape[1]

    def row_index(self, identifier: str) -> int:
        """Row of *identifier*; raises :class:`KeyError` when absent."""
        return self._row_of[identifier]

    def rows_for(self, identifiers: Iterable[str]) -> np.ndarray:
        """Row indices for *identifiers*, in the given order."""
        return np.array(
            [self._row_of[identifier] for identifier in identifiers], dtype=np.intp
        )

    @property
    def dense_sq(self) -> np.ndarray:
        """Elementwise square of the value matrix (lazy, cached).

        Needed by intersection-domain kernels, whose norms/variances run
        over co-rated coordinates only.
        """
        return self._dense_sq.get_or_build(self._square)

    def _square(self) -> np.ndarray:
        return self.dense * self.dense

    # -- inverted index -------------------------------------------------------

    def _inverted_index(self) -> list[np.ndarray]:
        return self._topic_rows.get_or_build(self._build_inverted_index)

    def _build_inverted_index(self) -> list[np.ndarray]:
        return [np.flatnonzero(self.mask[:, col]) for col in range(self.width)]

    def overlapping_rows(self, profile: Mapping[str, float]) -> np.ndarray:
        """Rows whose support shares at least one key with *profile*.

        This is the pre-kernel pruning step: for measures where zero
        support overlap implies similarity exactly 0.0 (cosine in either
        domain, intersection-domain Pearson), only these rows need a
        kernel evaluation.
        """
        index = self._inverted_index()
        cols = [
            col
            for topic in profile
            if (col := self.vocabulary.index_of(topic)) is not None
            and col < self.width
        ]
        if not cols:
            return np.empty(0, dtype=np.intp)
        return np.unique(np.concatenate([index[col] for col in cols]))
