"""CSR-packed trust adjacency + vectorized group-metric kernels.

The trust counterpart of :mod:`repro.perf.matrix`: where that module
packs taxonomy profiles for the similarity hot path, this one packs the
web of trust so whole Appleseed sweeps, PageRank power steps and
Advogato level scans phrase as numpy array operations instead of dict
loops.  A :class:`TrustMatrix` interns node identifiers into dense
indices and stores

* the **positive** edges (the only ones energy propagates along) in CSR
  form — row offsets ``indptr``, column indices ``indices``, weights
  ``weights`` — with per-row order equal to the graph's
  ``positive_successors`` dict order, so traversal-order-sensitive
  consumers (Advogato's max-flow network) reproduce the dict engines
  arc for arc;
* a separate flat **negative-edge slice** (``neg_src``/``neg_dst``/
  ``neg_weights``) for the one-step distrust discount, which must see
  distrust statements even though spreading ignores them.

The kernels below mirror :mod:`repro.trust` step by step — quota
splitting, decay, backward-propagation injection, convergence residual —
and are held to the same contract as :mod:`repro.perf.kernels`: the dict
implementations are the oracle, agreement within 1e-9, discrete outputs
(accepted sets, BFS orders) identical.  Engine selection lives in
:mod:`repro.trust.engine`; this module stays importable without the
trust package (``TYPE_CHECKING`` only) to keep the layering contract's
``trust -> perf`` edge lazy and one-directional.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, no runtime perf->trust edge
    from ..trust.graph import TrustGraph

__all__ = [
    "TrustMatrix",
    "appleseed_spread",
    "bfs_order_levels",
    "distrust_discount",
    "gather_rows",
    "level_capacities",
    "pagerank_power",
]


class TrustMatrix:
    """Packed, read-only view of a :class:`~repro.trust.graph.TrustGraph`.

    Node order follows the graph's insertion order (``graph.nodes()``),
    per-row target order follows ``positive_successors`` — both are load
    bearing for reproducing the dict engines' traversal orders.  The
    structure is immutable and picklable, so sharded sweeps can ship one
    packed copy to every worker instead of the dict-of-dicts graph.
    """

    __slots__ = (
        "ids",
        "index",
        "indptr",
        "indices",
        "weights",
        "edge_src",
        "neg_src",
        "neg_dst",
        "neg_weights",
    )

    def __init__(
        self,
        ids: list[str],
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        neg_src: np.ndarray,
        neg_dst: np.ndarray,
        neg_weights: np.ndarray,
    ) -> None:
        self.ids = ids
        self.index = {node: i for i, node in enumerate(ids)}
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        #: Flat source index per positive edge (CSR row expansion) — the
        #: scatter side of every bincount kernel below.
        self.edge_src = np.repeat(
            np.arange(len(ids), dtype=np.int64), np.diff(indptr)
        )
        self.neg_src = neg_src
        self.neg_dst = neg_dst
        self.neg_weights = neg_weights

    def __len__(self) -> int:
        return len(self.ids)

    @property
    def nnz(self) -> int:
        """Number of packed positive edges."""
        return int(self.indices.size)

    def out_degrees(self) -> np.ndarray:
        """Positive out-degree per node (CSR row lengths)."""
        return np.diff(self.indptr)

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """The positive targets and weights of node *i* (array views)."""
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        return self.indices[lo:hi], self.weights[lo:hi]

    def __getstate__(self) -> dict[str, object]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state: dict[str, object]) -> None:
        for name in self.__slots__:
            setattr(self, name, state[name])

    @classmethod
    def from_graph(cls, graph: "TrustGraph") -> "TrustMatrix":
        """Pack *graph*; node and per-row orders mirror its dict orders."""
        ids = list(graph.nodes())
        index = {node: i for i, node in enumerate(ids)}
        indptr = np.zeros(len(ids) + 1, dtype=np.int64)
        col: list[int] = []
        wgt: list[float] = []
        neg_src: list[int] = []
        neg_dst: list[int] = []
        neg_w: list[float] = []
        for i, node in enumerate(ids):
            positives = graph.positive_successors(node)
            indptr[i + 1] = indptr[i] + len(positives)
            for target, weight in positives.items():
                col.append(index[target])
                wgt.append(weight)
            for target, weight in graph.successors(node).items():
                if weight < 0.0:
                    neg_src.append(i)
                    neg_dst.append(index[target])
                    neg_w.append(weight)
        return cls(
            ids=ids,
            indptr=indptr,
            indices=np.asarray(col, dtype=np.int64),
            weights=np.asarray(wgt, dtype=np.float64),
            neg_src=np.asarray(neg_src, dtype=np.int64),
            neg_dst=np.asarray(neg_dst, dtype=np.int64),
            neg_weights=np.asarray(neg_w, dtype=np.float64),
        )

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[str, str, float]],
        nodes: Iterable[str] | None = None,
    ) -> "TrustMatrix":
        """Pack a stream of ``(source, target, weight)`` statements.

        Streaming sibling of :meth:`from_graph` for generator-produced
        communities too large to materialize as dict-of-dicts: interning
        happens on the fly and the CSR is assembled with one stable
        argsort.  Each ordered pair must appear at most once (generators
        guarantee this; :class:`~repro.trust.graph.TrustGraph` handles
        the overwrite semantics for mutable graphs).  *nodes* optionally
        pre-seeds the id intern table (for agents with no statements).
        """
        index: dict[str, int] = {}
        ids: list[str] = []

        def intern(node: str) -> int:
            slot = index.get(node)
            if slot is None:
                slot = len(ids)
                index[node] = slot
                ids.append(node)
            return slot

        if nodes is not None:
            for node in nodes:
                intern(node)
        src: list[int] = []
        dst: list[int] = []
        wgt: list[float] = []
        for source, target, weight in edges:
            if source == target:
                raise ValueError("self-trust edges are not allowed")
            src.append(intern(source))
            dst.append(intern(target))
            wgt.append(weight)
        n = len(ids)
        src_arr = np.asarray(src, dtype=np.int64)
        dst_arr = np.asarray(dst, dtype=np.int64)
        w_arr = np.asarray(wgt, dtype=np.float64)
        positive = w_arr > 0.0
        negative = w_arr < 0.0
        pos_src, pos_dst, pos_w = src_arr[positive], dst_arr[positive], w_arr[positive]
        # Stable sort keeps statement order within each row, matching the
        # insertion order a TrustGraph built from the same stream has.
        order = np.argsort(pos_src, kind="stable")
        pos_src, pos_dst, pos_w = pos_src[order], pos_dst[order], pos_w[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(pos_src, minlength=n), out=indptr[1:])
        return cls(
            ids=ids,
            indptr=indptr,
            indices=pos_dst,
            weights=pos_w,
            neg_src=src_arr[negative],
            neg_dst=dst_arr[negative],
            neg_weights=w_arr[negative],
        )


def gather_rows(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Concatenate the CSR slices of *rows*, preserving row order.

    Vectorized ranges-to-flat expansion: the result equals
    ``np.concatenate([indices[indptr[r]:indptr[r+1]] for r in rows])``
    without the per-row python loop.
    """
    counts = indptr[rows + 1] - indptr[rows]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype)
    ends = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return indices[np.repeat(indptr[rows], counts) + within]


def appleseed_spread(
    matrix: TrustMatrix,
    source: int,
    injection: float,
    spreading_factor: float,
    convergence_threshold: float,
    max_iterations: int,
    normalization: str = "linear",
    backward_propagation: bool = True,
) -> tuple[np.ndarray, np.ndarray, int, bool, list[float]]:
    """Whole-graph Appleseed sweeps as sparse matrix-vector products.

    Step-for-step mirror of ``Appleseed._compute_traced``: per sweep,
    every energized node keeps ``(1 - d)`` of its energy as rank
    (source excluded), forwards ``d`` split over its positive edges plus
    the virtual backward edge to the source, and the loop terminates on
    two consecutive sub-threshold residuals or full dissipation.
    Returns ``(rank, members, iterations, converged, history)`` where
    ``members`` indexes the oracle's rank-dict keyset (source included)
    so zero-rank frontier entries survive into the result.
    """
    n = len(matrix)
    d = spreading_factor
    weights = matrix.weights if normalization == "linear" else matrix.weights**2
    edge_src, edge_dst = matrix.edge_src, matrix.indices
    # Quota denominators: sum of (possibly squared) positive weights,
    # plus the weight-1 backward edge for every node except the source.
    # The backward weight is 1.0 under both normalizations (1**2 == 1),
    # and it *replaces* any real positive edge to the source — the
    # oracle's quota dict assigns ``edges[source] = 1.0`` over whatever
    # statement was there, so those real weights must not count twice.
    if backward_propagation:
        to_source = edge_dst == source
        if bool(to_source.any()):
            weights = weights.copy()
            weights[to_source] = 0.0
        den = np.bincount(edge_src, weights=weights, minlength=n) + 1.0
        den[source] -= 1.0
    else:
        den = np.bincount(edge_src, weights=weights, minlength=n)

    rank = np.zeros(n)
    member = np.zeros(n, dtype=bool)
    member[source] = True
    energy = np.zeros(n)
    energy[source] = injection
    history: list[float] = []
    iterations = 0
    converged = False
    while iterations < max_iterations:
        iterations += 1
        active = energy > 0.0
        member |= active
        kept = (1.0 - d) * energy
        kept[~active] = 0.0
        kept[source] = 0.0  # source rank is a backward-edge artifact
        rank += kept
        max_delta = float(kept.max(initial=0.0))
        forwarding = active & (den > 0.0)
        contrib = np.zeros(n)
        contrib[forwarding] = d * energy[forwarding] / den[forwarding]
        live = forwarding[edge_src]
        if live.any():
            hot_dst = edge_dst[live]
            outgoing = np.bincount(
                hot_dst,
                weights=weights[live] * contrib[edge_src[live]],
                minlength=n,
            )
            member[hot_dst] = True
        else:
            outgoing = np.zeros(n)
        if backward_propagation:
            # Every forwarding node except the source returns its
            # backward share (weight 1 / den) to the source.
            returned = contrib.copy()
            returned[source] = 0.0
            outgoing[source] += returned.sum()
        history.append(max_delta)
        # Convergence requires TWO consecutive sub-threshold sweeps —
        # see the oracle for why one sweep can alias energy parked at
        # the source.  The dissipation check runs on the *new* energy,
        # after the residual check, exactly as the dict loop orders it.
        if (
            iterations > 1
            and max_delta <= convergence_threshold
            and history[-2] <= convergence_threshold
        ):
            converged = True
            break
        if not bool(forwarding.any()):  # energy fully dissipated
            converged = True
            break
        energy = outgoing
    return rank, member, iterations, converged, history


def distrust_discount(
    matrix: TrustMatrix,
    source: int,
    rank: np.ndarray,
    member: np.ndarray,
    spreading_factor: float,
) -> np.ndarray:
    """One vectorized round of non-transitive distrust discounting.

    The oracle applies ``max(0, rank - penalty)`` per accuser
    *sequentially*; because every penalty is non-negative that equals a
    single ``max(0, rank - total_penalty)``, so one scatter-add over the
    negative-edge slice reproduces it exactly.
    """
    if matrix.neg_src.size == 0:
        return rank
    accuser = rank.copy()
    others = member.copy()
    others[source] = False
    peak = float(rank[others].max(initial=0.0))
    accuser[source] = peak or 1.0
    penalty = spreading_factor * np.bincount(
        matrix.neg_dst,
        weights=-matrix.neg_weights * accuser[matrix.neg_src],
        minlength=len(matrix),
    )
    adjusted = rank.copy()
    adjusted[others] = np.maximum(0.0, rank[others] - penalty[others])
    return adjusted


def pagerank_power(
    matrix: TrustMatrix,
    source: int,
    alpha: float,
    tolerance: float,
    max_iterations: int,
) -> tuple[np.ndarray, int, bool]:
    """Personalized PageRank power iteration over the positive CSR.

    Mass never leaves the component reachable from *source* (teleport
    and dangling mass both return there), so iterating over the full
    node set is algebraically identical to the oracle's restriction to
    ``reachable_from(source)``.
    """
    n = len(matrix)
    edge_src, edge_dst, weights = matrix.edge_src, matrix.indices, matrix.weights
    row_total = np.bincount(edge_src, weights=weights, minlength=n)
    spreading = row_total > 0.0
    inverse = np.zeros(n)
    inverse[spreading] = 1.0 / row_total[spreading]

    rank = np.zeros(n)
    rank[source] = 1.0
    iterations = 0
    converged = False
    while iterations < max_iterations:
        iterations += 1
        contrib = alpha * rank * inverse
        fresh = np.bincount(
            edge_dst, weights=weights * contrib[edge_src], minlength=n
        )
        dangling = float(rank[~spreading].sum())
        fresh[source] += (1.0 - alpha) + alpha * dangling
        delta = float(np.abs(fresh - rank).sum())
        rank = fresh
        if delta <= tolerance:
            converged = True
            break
    return rank, iterations, converged


def bfs_order_levels(
    matrix: TrustMatrix, source: int
) -> tuple[np.ndarray, np.ndarray]:
    """BFS discovery order and hop levels along positive edges.

    Returns ``(order, level)`` where *order* lists reached node indices
    in exactly the order a deque BFS iterating ``positive_successors``
    discovers them — Advogato's flow network is construction-order
    sensitive, so first-occurrence order is part of the contract, not a
    nicety.  *level* maps every node to its hop count (-1 unreached).
    """
    n = len(matrix)
    level = np.full(n, -1, dtype=np.int64)
    level[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    chunks = [frontier]
    depth = 0
    while frontier.size:
        targets = gather_rows(matrix.indptr, matrix.indices, frontier)
        targets = targets[level[targets] < 0]
        if targets.size == 0:
            break
        # First-occurrence dedupe, order preserved: np.unique sorts by
        # value, so re-sort the unique values by first appearance.
        uniq, first = np.unique(targets, return_index=True)
        fresh = uniq[np.argsort(first, kind="stable")]
        depth += 1
        level[fresh] = depth
        chunks.append(fresh)
        frontier = fresh
    return np.concatenate(chunks), level


def level_capacities(
    matrix: TrustMatrix,
    order: np.ndarray,
    level: np.ndarray,
    target_size: int,
    min_decay: float,
) -> list[int]:
    """Advogato per-level capacities, decaying by observed branching.

    Vector mirror of ``Advogato._level_capacities``: each level's
    capacity divides the previous one by the mean positive out-degree of
    the previous level's out-going members (floored at *min_decay*),
    never dropping below 1.
    """
    reached_levels = level[order]
    max_level = int(reached_levels.max(initial=0))
    degrees = matrix.out_degrees()[order]
    sequence = [target_size]
    for current in range(max_level):
        outgoing = degrees[(reached_levels == current) & (degrees > 0)]
        branching = (
            float(outgoing.sum()) / outgoing.size if outgoing.size else min_decay
        )
        decay = max(min_decay, branching)
        sequence.append(max(1, int(sequence[-1] / decay)))
    return sequence
