"""Engine selection for the similarity hot path.

Every similarity consumer (:func:`repro.core.similarity.top_similar`,
:class:`repro.core.recommender.PureCFRecommender`,
:meth:`repro.core.recommender.SemanticWebRecommender.similarities`)
takes an ``engine`` switch:

* ``"python"`` — the pure-Python dict kernels of
  :mod:`repro.core.similarity`.  Always available; the oracle the
  vectorized path is property-tested against.
* ``"numpy"``  — the packed-matrix kernels of :mod:`repro.perf.kernels`.
  Raises when numpy is missing.
* ``"auto"``   — numpy when importable (and, for one-shot rankings, when
  the candidate set is big enough to amortize packing), else python.

Both engines produce the same rankings and values to within 1e-9 —
choosing an engine is a performance decision, never a semantic one.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..obs import get_metrics

__all__ = [
    "AUTO_PACK_THRESHOLD",
    "community_scores",
    "numpy_available",
    "rank_profiles",
    "resolve_engine",
]

try:  # numpy is a declared dependency, but degrade gracefully without it
    import numpy as np

    from .kernels import similarity_many, top_k
    from .matrix import ProfileMatrix

    _HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _HAVE_NUMPY = False

#: Below this many candidates, ``engine="auto"`` one-shot rankings stay on
#: the python path: packing a matrix per call costs more than it saves.
#: Recommenders with a cached community matrix ignore this threshold.
AUTO_PACK_THRESHOLD = 32

_ENGINES = ("auto", "numpy", "python")


def numpy_available() -> bool:
    """Whether the numpy engine can run in this interpreter."""
    return _HAVE_NUMPY


def resolve_engine(engine: str = "auto", size: int | None = None) -> str:
    """Resolve an ``engine`` switch to ``"numpy"`` or ``"python"``.

    *size* is the candidate-set size for one-shot calls; pass ``None``
    when a packed matrix is (or will be) cached across calls.
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r} (expected one of {_ENGINES})")
    if engine == "numpy":
        if not _HAVE_NUMPY:
            raise RuntimeError("engine='numpy' requested but numpy is not installed")
        resolved = "numpy"
    elif engine == "python" or not _HAVE_NUMPY:
        resolved = "python"
    elif size is not None and size < AUTO_PACK_THRESHOLD:
        resolved = "python"
    else:
        resolved = "numpy"
    get_metrics().counter(f"engine.selected.{resolved}").inc()
    return resolved


def _prunable(measure: str, domain: str) -> bool:
    """Whether zero support overlap implies similarity exactly 0.0.

    True for cosine in both domains (the dot product is 0) and for
    intersection-domain Pearson (fewer than ``MIN_INTERSECTION`` shared
    keys).  Union-domain Pearson is *not* prunable: disjoint supports
    genuinely anticorrelate there.
    """
    return not (measure == "pearson" and domain == "union")


def community_scores(
    target: Mapping[str, float],
    matrix: "ProfileMatrix",
    measure: str = "pearson",
    domain: str = "union",
) -> "np.ndarray":
    """Similarity of *target* to every row, pruning where that is exact.

    For prunable measure/domain combinations the inverted topic index
    restricts kernel work to rows sharing at least one key with the
    target; everyone else scores 0.0 by construction.
    """
    metrics = get_metrics()
    if _prunable(measure, domain):
        rows = matrix.overlapping_rows(target)
        metrics.counter("similarity.index_scored").inc(len(rows))
        metrics.counter("similarity.index_pruned").inc(len(matrix) - len(rows))
        out = np.zeros(len(matrix))
        if len(rows):
            out[rows] = similarity_many(
                target, matrix, measure=measure, domain=domain, rows=rows
            )
        return out
    metrics.counter("similarity.index_scored").inc(len(matrix))
    return similarity_many(target, matrix, measure=measure, domain=domain)


def rank_profiles(
    target: Mapping[str, float],
    candidates: Mapping[str, Mapping[str, float]],
    measure: str = "pearson",
    domain: str = "union",
    limit: int | None = None,
) -> list[tuple[str, float]]:
    """One-shot numpy ranking: pack, score, heap-select.

    The numpy backend of :func:`repro.core.similarity.top_similar`; the
    candidate matrix lives only for this call.
    """
    matrix = ProfileMatrix.from_profiles(candidates)
    scores = community_scores(target, matrix, measure=measure, domain=domain)
    return top_k(matrix.ids, scores, limit)
