"""Performance subsystem: vectorized similarity + parallel experiment fan-out.

The community-scale hot path — all-pairs profile similarity and the
experiment sweeps over principals — phrases as numpy matrix-vector
products and a process-pool map without changing a single numeric
result.  See :mod:`repro.perf.matrix` (packed profiles),
:mod:`repro.perf.kernels` (vectorized Pearson/cosine + heap top-k),
:mod:`repro.perf.engine` (the ``engine="auto"|"numpy"|"python"``
switch), and :mod:`repro.perf.parallel` (deterministic multi-core
sweeps).

numpy is optional at runtime: without it every switch resolves to the
pure-Python oracle and only :class:`ParallelExperimentRunner` and the
engine-resolution helpers remain importable from this package.
"""

from __future__ import annotations

from .engine import numpy_available, resolve_engine
from .parallel import ParallelExperimentRunner, derive_seed, split_evenly

__all__ = [
    "ParallelExperimentRunner",
    "derive_seed",
    "numpy_available",
    "resolve_engine",
    "split_evenly",
]

if numpy_available():  # pragma: no branch
    from .engine import community_scores, rank_profiles  # noqa: F401
    from .kernels import (  # noqa: F401
        cosine_many,
        pearson_many,
        similarity_many,
        top_k,
        top_k_pairs,
    )
    from .matrix import ProfileMatrix, TopicVocabulary  # noqa: F401
    from .trustmatrix import TrustMatrix  # noqa: F401

    __all__ += [
        "ProfileMatrix",
        "TopicVocabulary",
        "TrustMatrix",
        "community_scores",
        "cosine_many",
        "pearson_many",
        "rank_profiles",
        "similarity_many",
        "top_k",
        "top_k_pairs",
    ]
