"""Vectorized similarity kernels over :class:`~repro.perf.matrix.ProfileMatrix`.

Each kernel scores one *target* profile against many candidate rows at
once and reproduces the conventions of :mod:`repro.core.similarity`
bit-for-bit in every exactly-representable case and to ~1e-12 otherwise:

* ``"union"`` domain — missing coordinates count as 0, the per-pair mean
  runs over the *union* of the two supports (not the full vocabulary);
* ``"intersection"`` domain — only co-rated coordinates enter, pairs
  with fewer than :data:`~repro.core.similarity.MIN_INTERSECTION` shared
  keys score 0.0;
* every degenerate case (empty domain, zero variance, zero norm) scores
  0.0, and results are clamped to ``[-1, +1]``.

The union-domain algebra: with ``n = |supp(t) ∪ supp(c)|``,

    cov   = t·c − Σt·Σc / n
    var_t = Σt² − (Σt)² / n        (and symmetrically for c)

so one matrix-vector product per quantity replaces the per-pair Python
loops.  Intersection-domain sums are masked through the counterpart's
support mask, e.g. ``Σ_{k∈∩} t_k = mask_c · t``.
"""

from __future__ import annotations

import heapq
from collections.abc import Mapping, Sequence

import numpy as np

from ..core.similarity import MIN_INTERSECTION
from .matrix import ProfileMatrix

__all__ = ["cosine_many", "pearson_many", "similarity_many", "top_k", "top_k_pairs"]


def _target_stats(
    target: Mapping[str, float], matrix: ProfileMatrix
) -> tuple[np.ndarray, np.ndarray, int, float, float]:
    """Vectorize *target* into the matrix's column space.

    Returns ``(values, mask, support, total, sumsq)``.  Coordinates whose
    topic the matrix has no column for still count toward the target's
    own support/total/sumsq (they belong to every union domain and to the
    target's own norm) but can never overlap a candidate.
    """
    width = matrix.width
    values = np.zeros(width)
    mask = np.zeros(width)
    support = 0
    total = 0.0
    sumsq = 0.0
    for topic, raw in target.items():
        value = float(raw)
        support += 1
        total += value
        sumsq += value * value
        col = matrix.vocabulary.index_of(topic)
        if col is not None and col < width:
            values[col] = value
            mask[col] = 1.0
    return values, mask, support, total, sumsq


def _select(
    matrix: ProfileMatrix, rows: np.ndarray | None, squared: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Row-sliced views of the matrix arrays the kernels consume."""
    dense = matrix.dense_sq if squared else matrix.dense
    mask = matrix.mask
    if rows is None:
        return dense, mask
    return dense[rows], mask[rows]


def _finish(out: np.ndarray) -> np.ndarray:
    np.clip(out, -1.0, 1.0, out=out)
    out += 0.0  # normalize -0.0 to +0.0, matching the scalar oracle
    return out


def pearson_many(
    target: Mapping[str, float],
    matrix: ProfileMatrix,
    rows: np.ndarray | None = None,
    domain: str = "union",
) -> np.ndarray:
    """Pearson correlation of *target* against the selected rows.

    Mirrors :func:`repro.core.similarity.pearson`: the returned array is
    aligned with *rows* (all rows when ``None``).
    """
    if domain not in ("union", "intersection"):
        raise ValueError(f"unknown domain {domain!r}")
    values, tmask, t_support, t_total, t_sumsq = _target_stats(target, matrix)
    dense, mask = _select(matrix, rows)
    dot = dense @ values
    if domain == "union":
        support = matrix.support if rows is None else matrix.support[rows]
        totals = matrix.row_sum if rows is None else matrix.row_sum[rows]
        sumsqs = matrix.row_sumsq if rows is None else matrix.row_sumsq[rows]
        n = t_support + support - mask @ tmask
        minimum = 1.0  # an empty union is the only degenerate count
        t_sum, c_sum = t_total, totals
        t_sq, c_sq = t_sumsq, sumsqs
    else:
        dense_sq, _ = _select(matrix, rows, squared=True)
        n = mask @ tmask
        minimum = float(MIN_INTERSECTION)
        t_sum = mask @ values
        c_sum = dense @ tmask
        t_sq = mask @ (values * values)
        c_sq = dense_sq @ tmask
    safe_n = np.where(n >= minimum, n, 1.0)
    cov = dot - t_sum * c_sum / safe_n
    var_t = t_sq - t_sum * t_sum / safe_n
    var_c = c_sq - c_sum * c_sum / safe_n
    # sqrt each factor separately, like the oracle: the product of two
    # tiny variances can underflow even when both are representable.
    denominator = np.sqrt(np.maximum(var_t, 0.0)) * np.sqrt(np.maximum(var_c, 0.0))
    valid = (n >= minimum) & (var_t > 0.0) & (var_c > 0.0) & (denominator > 0.0)
    out = np.zeros(dense.shape[0])
    out[valid] = cov[valid] / denominator[valid]
    return _finish(out)


def cosine_many(
    target: Mapping[str, float],
    matrix: ProfileMatrix,
    rows: np.ndarray | None = None,
    domain: str = "union",
) -> np.ndarray:
    """Cosine similarity of *target* against the selected rows.

    Mirrors :func:`repro.core.similarity.cosine` including the "either
    profile empty scores 0.0" convention.
    """
    if domain not in ("union", "intersection"):
        raise ValueError(f"unknown domain {domain!r}")
    values, tmask, t_support, _, t_sumsq = _target_stats(target, matrix)
    dense, mask = _select(matrix, rows)
    if t_support == 0:
        return np.zeros(dense.shape[0])
    dot = dense @ values
    if domain == "union":
        support = matrix.support if rows is None else matrix.support[rows]
        norms = matrix.row_norm if rows is None else matrix.row_norm[rows]
        denominator = np.sqrt(t_sumsq) * norms
        valid = (support > 0) & (denominator > 0.0)
    else:
        dense_sq, _ = _select(matrix, rows, squared=True)
        n = mask @ tmask
        denominator = np.sqrt(mask @ (values * values)) * np.sqrt(dense_sq @ tmask)
        valid = (n >= MIN_INTERSECTION) & (denominator > 0.0)
    out = np.zeros(dense.shape[0])
    out[valid] = dot[valid] / denominator[valid]
    return _finish(out)


def similarity_many(
    target: Mapping[str, float],
    matrix: ProfileMatrix,
    measure: str = "pearson",
    domain: str = "union",
    rows: np.ndarray | None = None,
) -> np.ndarray:
    """Dispatch to :func:`pearson_many` / :func:`cosine_many` by name."""
    if measure == "pearson":
        return pearson_many(target, matrix, rows=rows, domain=domain)
    if measure == "cosine":
        return cosine_many(target, matrix, rows=rows, domain=domain)
    raise ValueError(f"unknown similarity measure {measure!r}")


def top_k(
    identifiers: Sequence[str],
    scores: np.ndarray | Sequence[float],
    limit: int | None = None,
) -> list[tuple[str, float]]:
    """The *limit* best ``(identifier, score)`` pairs, best first.

    Exactly equivalent to sorting all pairs by ``(-score, identifier)``
    and truncating, but selects with a partition/heap instead of sorting
    the whole community.  Boundary ties are resolved by identifier, so
    the result is deterministic and identical to the full sort.
    """
    scores = np.asarray(scores, dtype=float)
    n = len(identifiers)
    if limit is not None and limit <= 0:
        return []
    if limit is None or limit >= n:
        order = sorted(range(n), key=lambda i: (-scores[i], identifiers[i]))
        return [(identifiers[i], float(scores[i])) for i in order]
    # Partition on score alone, then pull in *every* row tied with the
    # k-th score so identifier tie-breaks can't be cut off arbitrarily.
    boundary = np.argpartition(-scores, limit - 1)[:limit]
    threshold = scores[boundary].min()
    candidates = np.flatnonzero(scores >= threshold).tolist()
    candidates.sort(key=lambda i: (-scores[i], identifiers[i]))
    return [(identifiers[i], float(scores[i])) for i in candidates[:limit]]


def top_k_pairs(
    pairs: Sequence[tuple[str, float]], limit: int | None = None
) -> list[tuple[str, float]]:
    """Heap-based top-*limit* over ``(identifier, score)`` pairs.

    The pure-Python counterpart of :func:`top_k` for callers that already
    hold scored pairs; equivalent to the full ``(-score, id)`` sort.
    """
    if limit is None or limit >= len(pairs):
        return sorted(pairs, key=lambda kv: (-kv[1], kv[0]))
    if limit <= 0:
        return []
    return heapq.nsmallest(limit, pairs, key=lambda kv: (-kv[1], kv[0]))
