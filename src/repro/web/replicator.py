"""The full §4 deployment: split-channel publishing and one-call replication.

§4 separates the two information channels:

* **FOAF homepages** carry identity and *trust* statements (plus the
  ``foaf:knows`` links crawlers walk) — "FOAF defines machine-readable
  homepages based upon RDF and allows weaving acquaintance networks",
  with Golbeck's extension adding real trust values;
* **weblogs** carry *ratings* — "those [hyperlinks] referring to product
  pages from large catalogs like Amazon count as implicit votes".

:func:`publish_split_community` hosts a community in exactly that shape:
rating-free homepages, one weblog per agent, plus the two global
documents.  :class:`CommunityReplicator` is the consumer side: it crawls
homepages for the trust graph, fetches and mines each discovered agent's
weblog, and assembles the combined partial dataset the recommender runs
on — the complete decentralized loop in one call.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..core.models import Dataset
from ..core.taxonomy import Taxonomy
from ..obs import Stopwatch, get_metrics, get_tracer
from ..semweb.foaf import publish_agent, publish_catalog, publish_taxonomy
from ..semweb.serializer import serialize_ntriples
from .crawler import DEFAULT_CATALOG_URI, DEFAULT_TAXONOMY_URI, Crawler
from .faults import RetryPolicy
from .network import SimulatedWeb, WebError
from .storage import DocumentStore
from .weblog import LinkMiner, publish_weblogs, weblog_uri

__all__ = ["CommunityReplicator", "ReplicationReport", "publish_split_community"]


def publish_split_community(
    web: SimulatedWeb,
    dataset: Dataset,
    taxonomy: Taxonomy,
    taxonomy_uri: str = DEFAULT_TAXONOMY_URI,
    catalog_uri: str = DEFAULT_CATALOG_URI,
) -> tuple[str, str]:
    """Host a community with trust and ratings on separate channels.

    Homepages carry trust statements only (no ``repro:rates`` triples);
    ratings are rendered into each agent's weblog.  Returns the URIs of
    the global taxonomy and catalog documents.
    """
    for uri in sorted(dataset.agents):
        agent = dataset.agents[uri]
        graph = publish_agent(agent, dataset.trust_of(uri), ratings={})
        web.publish(uri, serialize_ntriples(graph))
    publish_weblogs(web, dataset)
    web.publish(taxonomy_uri, serialize_ntriples(publish_taxonomy(taxonomy)))
    web.publish(catalog_uri, serialize_ntriples(publish_catalog(dataset.products)))
    return taxonomy_uri, catalog_uri


@dataclass(frozen=True, slots=True)
class ReplicationReport:
    """Outcome of one :meth:`CommunityReplicator.replicate` pass.

    The resilience fields mirror :class:`~repro.web.crawler.CrawlReport`
    but aggregate the whole pass (global documents + homepage crawl +
    weblog fetches): ``unreachable`` lists URIs whose fetch failed for
    infrastructure reasons, ``degraded`` the subset served from a stale
    replica instead, and ``quarantined`` corrupt downloads held aside.
    """

    homepage_fetches: int
    weblog_fetches: int
    weblogs_missing: tuple[str, ...]
    parse_failures: tuple[str, ...]
    mined_ratings: int
    unmapped_links: int
    budget_exhausted: bool
    unreachable: tuple[str, ...] = ()
    degraded: tuple[str, ...] = ()
    quarantined: tuple[str, ...] = ()
    retries: int = 0
    transient_failures: int = 0
    backoff_ticks: int = 0
    breaker_trips: int = 0
    breaker_short_circuits: int = 0
    #: ``(phase, monotonic ms)`` per replication phase, in execution order
    #: (globals → homepages → assemble → weblogs).  Observability only,
    #: excluded from equality so seeded-run reports compare reproducibly.
    phase_durations: tuple[tuple[str, float], ...] = field(
        default=(), compare=False
    )
    #: ``(phase, breaker trips during that phase)``, same order.
    phase_breaker_trips: tuple[tuple[str, int], ...] = ()


@contextmanager
def _phase(
    name: str,
    crawler: Crawler,
    durations: list[tuple[str, float]],
    trips: list[tuple[str, int]],
) -> Iterator[None]:
    """Time one replication phase under a ``replicate.<name>`` span.

    Appends the phase's monotonic duration and breaker-trip delta to the
    caller's accumulators (they end up on the :class:`ReplicationReport`).
    """
    trips_before = crawler.breakers.trips
    watch = Stopwatch()
    with get_tracer().span(f"replicate.{name}") as span, watch:
        yield
    tripped = crawler.breakers.trips - trips_before
    span.set("breaker_trips", tripped)
    durations.append((name, watch.elapsed_ms))
    trips.append((name, tripped))


@dataclass
class CommunityReplicator:
    """Crawl homepages + mine weblogs into one recommendable dataset.

    ``retry`` opts the whole pass — globals, homepages, and weblogs —
    into bounded retries with backoff; circuit breakers are shared with
    the crawler so a failing site is skipped consistently.
    """

    web: SimulatedWeb
    store: DocumentStore = field(default_factory=DocumentStore)
    retry: RetryPolicy | None = None

    def replicate(
        self,
        seeds: list[str],
        budget: int | None = None,
        taxonomy_uri: str = DEFAULT_TAXONOMY_URI,
        catalog_uri: str = DEFAULT_CATALOG_URI,
    ) -> tuple[Dataset, Taxonomy, ReplicationReport]:
        """Run the full consumer-side loop from *seeds*.

        *budget*, when given, bounds the number of *homepage* fetches;
        weblogs are fetched one per successfully replicated homepage
        (they are cheap, targeted requests, not frontier exploration).
        Returns the assembled partial dataset (trust from homepages,
        ratings from weblogs), the shared taxonomy, and a report.
        """
        crawler = Crawler(web=self.web, store=self.store, retry=self.retry)
        durations: list[tuple[str, float]] = []
        phase_trips: list[tuple[str, int]] = []
        with get_tracer().span(
            "replicate.pass", seeds=len(seeds), budget=budget
        ) as span:
            with _phase("globals", crawler, durations, phase_trips):
                globals_report = crawler.fetch_global_documents(
                    taxonomy_uri, catalog_uri
                )
            with _phase("homepages", crawler, durations, phase_trips):
                crawl_report = crawler.crawl(seeds, budget=budget)

            with _phase("assemble", crawler, durations, phase_trips):
                dataset, assembly_failures = self.store.assemble_dataset()
                taxonomy = self.store.assemble_taxonomy()
                if taxonomy is None:
                    raise WebError(taxonomy_uri)

            miner = LinkMiner(known_products=frozenset(dataset.products))
            weblog_fetches = 0
            weblogs_missing: list[str] = []
            weblog_unreachable: list[str] = []
            weblog_degraded: list[str] = []
            retries = 0
            transients = 0
            backoff = 0
            mined = 0
            with _phase("weblogs", crawler, durations, phase_trips):
                for agent_uri in sorted(dataset.agents):
                    log_uri = weblog_uri(agent_uri)
                    outcome = crawler.fetcher.fetch(log_uri)
                    retries += outcome.retries
                    transients += outcome.transient_failures
                    backoff += outcome.backoff_ticks
                    if outcome.result is not None:
                        weblog_fetches += outcome.cost
                        body = outcome.result.body
                        self.store.put(
                            uri=log_uri,
                            body=body,
                            version=outcome.result.version,
                            fetched_at=crawler.clock,
                            kind="weblog",
                        )
                    elif outcome.error == "missing":
                        weblogs_missing.append(log_uri)
                        continue
                    else:
                        # Unreachable: mine the stale replica when we have
                        # one, so transient weblog outages don't drop known
                        # ratings.
                        weblog_unreachable.append(log_uri)
                        stale = self.store.get(log_uri)
                        if stale is None:
                            continue
                        self.store.mark_degraded(log_uri)
                        weblog_degraded.append(log_uri)
                        body = stale.body
                    for rating in miner.mine(agent_uri, body):
                        dataset.add_rating(rating)
                        mined += 1
            span.set("agents", len(dataset.agents))
            span.set("mined_ratings", mined)
            metrics = get_metrics()
            metrics.counter("replicate.passes").inc()
            metrics.counter("replicate.mined_ratings").inc(mined)

        passes = (globals_report, crawl_report)
        report = ReplicationReport(
            homepage_fetches=crawl_report.fetched,
            weblog_fetches=weblog_fetches,
            weblogs_missing=tuple(weblogs_missing),
            parse_failures=tuple(
                sorted(set(crawl_report.parse_failures) | set(assembly_failures))
            ),
            mined_ratings=mined,
            unmapped_links=len(miner.unmapped),
            budget_exhausted=crawl_report.budget_exhausted,
            unreachable=tuple(
                sorted(
                    {uri for p in passes for uri in p.unreachable}
                    | set(weblog_unreachable)
                )
            ),
            degraded=tuple(
                sorted(
                    {uri for p in passes for uri in p.degraded}
                    | set(weblog_degraded)
                )
            ),
            quarantined=tuple(
                sorted({uri for p in passes for uri in p.quarantined})
            ),
            retries=sum(p.retries for p in passes) + retries,
            transient_failures=sum(p.transient_failures for p in passes) + transients,
            backoff_ticks=sum(p.backoff_ticks for p in passes) + backoff,
            breaker_trips=crawler.breakers.trips,
            breaker_short_circuits=crawler.breakers.short_circuits,
            phase_durations=tuple(durations),
            phase_breaker_trips=tuple(phase_trips),
        )
        return dataset, taxonomy, report
