"""The full §4 deployment: split-channel publishing and one-call replication.

§4 separates the two information channels:

* **FOAF homepages** carry identity and *trust* statements (plus the
  ``foaf:knows`` links crawlers walk) — "FOAF defines machine-readable
  homepages based upon RDF and allows weaving acquaintance networks",
  with Golbeck's extension adding real trust values;
* **weblogs** carry *ratings* — "those [hyperlinks] referring to product
  pages from large catalogs like Amazon count as implicit votes".

:func:`publish_split_community` hosts a community in exactly that shape:
rating-free homepages, one weblog per agent, plus the two global
documents.  :class:`CommunityReplicator` is the consumer side: it crawls
homepages for the trust graph, fetches and mines each discovered agent's
weblog, and assembles the combined partial dataset the recommender runs
on — the complete decentralized loop in one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.models import Dataset
from ..core.taxonomy import Taxonomy
from ..semweb.foaf import publish_agent, publish_catalog, publish_taxonomy
from ..semweb.serializer import serialize_ntriples
from .crawler import DEFAULT_CATALOG_URI, DEFAULT_TAXONOMY_URI, Crawler
from .network import SimulatedWeb, WebError
from .storage import DocumentStore
from .weblog import LinkMiner, publish_weblogs, weblog_uri

__all__ = ["CommunityReplicator", "ReplicationReport", "publish_split_community"]


def publish_split_community(
    web: SimulatedWeb,
    dataset: Dataset,
    taxonomy: Taxonomy,
    taxonomy_uri: str = DEFAULT_TAXONOMY_URI,
    catalog_uri: str = DEFAULT_CATALOG_URI,
) -> tuple[str, str]:
    """Host a community with trust and ratings on separate channels.

    Homepages carry trust statements only (no ``repro:rates`` triples);
    ratings are rendered into each agent's weblog.  Returns the URIs of
    the global taxonomy and catalog documents.
    """
    for uri in sorted(dataset.agents):
        agent = dataset.agents[uri]
        graph = publish_agent(agent, dataset.trust_of(uri), ratings={})
        web.publish(uri, serialize_ntriples(graph))
    publish_weblogs(web, dataset)
    web.publish(taxonomy_uri, serialize_ntriples(publish_taxonomy(taxonomy)))
    web.publish(catalog_uri, serialize_ntriples(publish_catalog(dataset.products)))
    return taxonomy_uri, catalog_uri


@dataclass(frozen=True, slots=True)
class ReplicationReport:
    """Outcome of one :meth:`CommunityReplicator.replicate` pass."""

    homepage_fetches: int
    weblog_fetches: int
    weblogs_missing: tuple[str, ...]
    parse_failures: tuple[str, ...]
    mined_ratings: int
    unmapped_links: int
    budget_exhausted: bool


@dataclass
class CommunityReplicator:
    """Crawl homepages + mine weblogs into one recommendable dataset."""

    web: SimulatedWeb
    store: DocumentStore = field(default_factory=DocumentStore)

    def replicate(
        self,
        seeds: list[str],
        budget: int | None = None,
        taxonomy_uri: str = DEFAULT_TAXONOMY_URI,
        catalog_uri: str = DEFAULT_CATALOG_URI,
    ) -> tuple[Dataset, Taxonomy, ReplicationReport]:
        """Run the full consumer-side loop from *seeds*.

        *budget*, when given, bounds the number of *homepage* fetches;
        weblogs are fetched one per successfully replicated homepage
        (they are cheap, targeted requests, not frontier exploration).
        Returns the assembled partial dataset (trust from homepages,
        ratings from weblogs), the shared taxonomy, and a report.
        """
        crawler = Crawler(web=self.web, store=self.store)
        crawler.fetch_global_documents(taxonomy_uri, catalog_uri)
        crawl_report = crawler.crawl(seeds, budget=budget)

        dataset, assembly_failures = self.store.assemble_dataset()
        taxonomy = self.store.assemble_taxonomy()
        if taxonomy is None:
            raise WebError(taxonomy_uri)

        miner = LinkMiner(known_products=frozenset(dataset.products))
        weblog_fetches = 0
        weblogs_missing: list[str] = []
        mined = 0
        for agent_uri in sorted(dataset.agents):
            log_uri = weblog_uri(agent_uri)
            try:
                result = self.web.fetch(log_uri)
            except WebError:
                weblogs_missing.append(log_uri)
                continue
            weblog_fetches += 1
            self.store.put(
                uri=log_uri,
                body=result.body,
                version=result.version,
                fetched_at=crawler.clock,
                kind="weblog",
            )
            for rating in miner.mine(agent_uri, result.body):
                dataset.add_rating(rating)
                mined += 1

        report = ReplicationReport(
            homepage_fetches=crawl_report.fetched,
            weblog_fetches=weblog_fetches,
            weblogs_missing=tuple(weblogs_missing),
            parse_failures=tuple(
                sorted(set(crawl_report.parse_failures) | set(assembly_failures))
            ),
            mined_ratings=mined,
            unmapped_links=len(miner.unmapped),
            budget_exhausted=crawl_report.budget_exhausted,
        )
        return dataset, taxonomy, report
