"""Fault injection and resilience for the decentralized crawl.

The paper's infrastructure assumes an unreliable medium: agents "publish
or update documents" on remote hosts, and "tailored crawlers search the
Web for weblogs and ensure data freshness" (§4.1).  Real hosts time out,
go down, and serve truncated files — so the consumer side needs failure
semantics, not just a happy path.  This module provides both halves:

* **Injection** — :class:`FaultPlan` / :class:`FaultyWeb` wrap a
  :class:`~repro.web.network.SimulatedWeb` and inject transient errors
  (:class:`TransientWebError`), permanent per-site outages
  (:class:`HostDownError`), slow fetches (extra latency ticks charged
  against the crawl budget), and corrupted or truncated bodies (served
  normally, so they flow through the real parse path and surface as
  :class:`~repro.semweb.serializer.ParseError`).  Every decision derives
  from a stable hash of ``(seed, site-or-uri, attempt)``, so a run is
  bit-for-bit reproducible for a fixed seed — across processes, since no
  Python hash randomization is involved.

* **Resilience** — :class:`RetryPolicy` (bounded retries, exponential
  backoff in simulated ticks, seeded jitter), a per-site
  :class:`CircuitBreakerRegistry` (closed → open → half-open), and
  :class:`ResilientFetcher`, which combines the two into the single
  fetch primitive the crawler and replicator use.

Because every agent hosts its own documents in a decentralized
community, "host" granularity is the *site* — the URI's authority plus
its first path segment (:func:`site_of`) — so one agent's outage never
blacks out its neighbors, while an agent's homepage and weblog share a
breaker.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Iterator
from dataclasses import dataclass, field
from urllib.parse import urlsplit

from ..obs import get_metrics
from .network import FetchResult, SimulatedWeb, WebError

__all__ = [
    "CircuitBreakerRegistry",
    "FaultPlan",
    "FaultyWeb",
    "FetchOutcome",
    "HostDownError",
    "ResilientFetcher",
    "RetryPolicy",
    "TransientWebError",
    "site_of",
]


class TransientWebError(WebError):
    """A retryable 5xx-style failure: the fetch may succeed if repeated.

    Subclasses :class:`WebError` so fault-unaware consumers degrade to
    treating the document as missing instead of crashing.
    """


class HostDownError(WebError):
    """The document's site is permanently down; retrying cannot help."""


def site_of(uri: str) -> str:
    """The failure domain of *uri*: authority plus first path segment.

    In a decentralized community each agent hosts its own homepage and
    weblog under one URI prefix, so this groups exactly the documents
    that live and die together (``…/a0001`` and ``…/a0001/weblog``).
    """
    parts = urlsplit(uri)
    if not parts.netloc:
        return uri
    segments = [piece for piece in parts.path.split("/") if piece]
    return f"{parts.netloc}/{segments[0]}" if segments else parts.netloc


def _stable_hash(*parts: object) -> int:
    """A process-stable 64-bit hash of the joined parts."""
    key = "\x1f".join(str(part) for part in parts).encode("utf-8")
    return int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(), "big")


def _corrupt_body(body: str, seed: int, uri: str, attempt: int) -> str:
    """Deterministically damage *body* so it cannot parse as N-Triples.

    Truncates at a seeded offset (a torn download) and appends an
    unterminated term, guaranteeing the real parse path raises
    :class:`~repro.semweb.serializer.ParseError` rather than silently
    accepting a valid prefix of the document.
    """
    rng = random.Random(_stable_hash(seed, "corrupt", uri, attempt))
    keep = int(len(body) * rng.uniform(0.2, 0.8))
    return body[:keep] + "\n<corrupted-after-" + str(keep) + "-bytes\n"


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Seeded description of which faults a :class:`FaultyWeb` injects.

    Rates are independent per-attempt probabilities except
    ``outage_rate``, which is a per-*site* coin flipped once: a down
    site stays down for the whole run (a permanent outage).
    """

    transient_rate: float = 0.0
    outage_rate: float = 0.0
    corruption_rate: float = 0.0
    slow_rate: float = 0.0
    slow_ticks: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("transient_rate", "outage_rate", "corruption_rate", "slow_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.slow_ticks < 0:
            raise ValueError("slow_ticks must be non-negative")

    def site_down(self, site: str) -> bool:
        """Whether *site* is permanently down under this plan."""
        if self.outage_rate <= 0.0:
            return False
        rng = random.Random(_stable_hash(self.seed, "outage", site))
        return rng.random() < self.outage_rate

    def rolls(self, uri: str, attempt: int) -> tuple[bool, bool, bool]:
        """``(transient, slow, corrupt)`` decisions for one fetch attempt."""
        rng = random.Random(_stable_hash(self.seed, uri, attempt))
        return (
            rng.random() < self.transient_rate,
            rng.random() < self.slow_rate,
            rng.random() < self.corruption_rate,
        )


class FaultyWeb:
    """A :class:`SimulatedWeb` proxy that injects the faults of a plan.

    Hosting (publish / stage / deliver) and probes pass straight
    through; :meth:`fetch` may instead raise :class:`HostDownError` or
    :class:`TransientWebError`, serve a corrupted body, or charge extra
    latency ticks (exposed as :attr:`last_fetch_cost` for budget
    accounting).  All injected error traffic is charged to the inner
    web's ``error_count`` so budgets and benchmarks see honest totals.
    """

    def __init__(self, inner: SimulatedWeb, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.last_fetch_cost = 1
        self.transient_failures = 0
        self.outages_hit = 0
        self.corrupted_served = 0
        self.slow_fetches = 0
        self.latency_ticks = 0
        self._attempts: dict[str, int] = {}

    # -- hosting passthrough ---------------------------------------------------

    def publish(self, uri: str, body: str) -> None:
        self.inner.publish(uri, body)

    def stage_update(self, uri: str, body: str) -> None:
        self.inner.stage_update(uri, body)

    def deliver(self) -> int:
        return self.inner.deliver()

    def pending_updates(self) -> int:
        return self.inner.pending_updates()

    # -- consumption -----------------------------------------------------------

    def fetch(self, uri: str) -> FetchResult:
        """Fetch through the fault plan; see class docstring for outcomes."""
        attempt = self._attempts.get(uri, 0) + 1
        self._attempts[uri] = attempt
        if self.plan.site_down(site_of(uri)):
            self.outages_hit += 1
            self.inner.error_count += 1
            raise HostDownError(uri)
        transient, slow, corrupt = self.plan.rolls(uri, attempt)
        if transient:
            self.transient_failures += 1
            self.inner.error_count += 1
            raise TransientWebError(uri)
        result = self.inner.fetch(uri)
        cost = 1
        if slow:
            cost += self.plan.slow_ticks
            self.slow_fetches += 1
            self.latency_ticks += self.plan.slow_ticks
        self.last_fetch_cost = cost
        if corrupt:
            self.corrupted_served += 1
            body = _corrupt_body(result.body, self.plan.seed, uri, attempt)
            return FetchResult(uri=uri, body=body, version=result.version)
        return result

    def exists(self, uri: str) -> bool:
        return self.inner.exists(uri)

    def version(self, uri: str) -> int:
        return self.inner.version(uri)

    def uris(self) -> Iterator[str]:
        return self.inner.uris()

    # -- traffic counters (single source of truth: the inner web) --------------

    @property
    def fetch_count(self) -> int:
        return self.inner.fetch_count

    @property
    def error_count(self) -> int:
        return self.inner.error_count

    @property
    def probe_count(self) -> int:
        return self.inner.probe_count

    @property
    def total_traffic(self) -> int:
        return self.inner.total_traffic

    def __len__(self) -> int:
        return len(self.inner)

    def __contains__(self, uri: str) -> bool:
        return uri in self.inner


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded retries with exponential backoff in simulated ticks.

    ``max_retries`` is the number of *re*-attempts after the first try;
    ``max_retries=0`` means fetch exactly once (the fault-unaware
    default).  Backoff for retry *n* is
    ``min(max_backoff, base_backoff * multiplier**n)`` ticks, widened by
    up to ±``jitter`` (a fraction) from a seeded, per-URI RNG so
    synchronized retry storms decorrelate deterministically.
    """

    max_retries: int = 3
    base_backoff: int = 1
    multiplier: float = 2.0
    max_backoff: int = 8
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff bounds must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_ticks(self, uri: str, attempt: int) -> int:
        """Ticks to wait before retry number *attempt* (0-based) of *uri*."""
        raw = min(float(self.max_backoff), self.base_backoff * self.multiplier**attempt)
        rng = random.Random(_stable_hash(self.seed, "backoff", uri, attempt))
        spread = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0, round(raw * spread))


@dataclass
class CircuitBreakerRegistry:
    """Per-site circuit breakers: closed → open → half-open → closed.

    ``failure_threshold`` consecutive failures open a site's breaker;
    while open, :meth:`allow` denies (a *short circuit*, counted but
    free) until ``cooldown_ticks`` have passed, after which the breaker
    half-opens and admits one probe: success re-closes it, failure
    re-opens it for another cooldown.
    """

    failure_threshold: int = 5
    cooldown_ticks: int = 8
    trips: int = 0
    short_circuits: int = 0
    _states: dict[str, str] = field(default_factory=dict)
    _failures: dict[str, int] = field(default_factory=dict)
    _opened_at: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_ticks < 1:
            raise ValueError("cooldown_ticks must be >= 1")

    def state(self, site: str) -> str:
        """Current state of *site*'s breaker: closed, open, or half_open."""
        return self._states.get(site, "closed")

    def allow(self, site: str, now: int) -> bool:
        """Whether a fetch against *site* may proceed at tick *now*."""
        if self.state(site) == "open":
            if now - self._opened_at[site] >= self.cooldown_ticks:
                self._states[site] = "half_open"
                get_metrics().counter("breaker.half_open_probes").inc()
                return True
            self.short_circuits += 1
            get_metrics().counter("breaker.short_circuits").inc()
            return False
        return True

    def record_success(self, site: str) -> None:
        self._failures[site] = 0
        self._states[site] = "closed"

    def record_failure(self, site: str, now: int) -> None:
        if self.state(site) == "half_open":
            self._states[site] = "open"
            self._opened_at[site] = now
            self.trips += 1
            get_metrics().counter("breaker.trips").inc()
            return
        failures = self._failures.get(site, 0) + 1
        self._failures[site] = failures
        if failures >= self.failure_threshold and self.state(site) != "open":
            self._states[site] = "open"
            self._opened_at[site] = now
            self.trips += 1
            get_metrics().counter("breaker.trips").inc()

    def open_sites(self) -> tuple[str, ...]:
        """Sites whose breaker is currently open or half-open."""
        return tuple(
            sorted(site for site, state in self._states.items() if state != "closed")
        )


@dataclass(frozen=True, slots=True)
class FetchOutcome:
    """What one resilient fetch produced, successful or not.

    ``error`` is ``None`` on success, else one of ``"missing"`` (404),
    ``"transient"`` (retries exhausted), ``"outage"`` (site down), or
    ``"short_circuit"`` (open breaker, no attempt made).  ``cost`` is
    the budget charge: 1 per completed transfer plus any latency ticks;
    failed attempts cost no budget (their traffic shows up in the web's
    ``error_count``).
    """

    uri: str
    result: FetchResult | None
    error: str | None
    attempts: int = 0
    retries: int = 0
    transient_failures: int = 0
    backoff_ticks: int = 0
    cost: int = 0

    @property
    def ok(self) -> bool:
        return self.result is not None


@dataclass
class ResilientFetcher:
    """The retry/backoff/breaker wiring around ``web.fetch``.

    Maintains a monotonic tick counter (one tick per call, plus backoff
    and latency ticks) that drives breaker cooldowns; all randomness is
    the policy's seeded jitter, so runs are reproducible.
    """

    web: SimulatedWeb | FaultyWeb
    retry: RetryPolicy = field(default_factory=lambda: RetryPolicy(max_retries=0))
    breakers: CircuitBreakerRegistry = field(default_factory=CircuitBreakerRegistry)
    ticks: int = 0

    def fetch(self, uri: str) -> FetchOutcome:
        outcome = self._fetch(uri)
        metrics = get_metrics()
        metrics.counter(f"fetch.outcome.{outcome.error or 'ok'}").inc()
        if outcome.retries:
            metrics.counter("fetch.retries").inc(outcome.retries)
        if outcome.backoff_ticks:
            metrics.counter("fetch.backoff_ticks").inc(outcome.backoff_ticks)
        return outcome

    def _fetch(self, uri: str) -> FetchOutcome:
        site = site_of(uri)
        self.ticks += 1
        if not self.breakers.allow(site, self.ticks):
            return FetchOutcome(uri=uri, result=None, error="short_circuit")
        retries = 0
        transients = 0
        backoff_total = 0
        attempt = 0
        while True:
            try:
                result = self.web.fetch(uri)
            except TransientWebError:
                transients += 1
                self.breakers.record_failure(site, self.ticks)
                retry_allowed = attempt < self.retry.max_retries and self.breakers.allow(
                    site, self.ticks
                )
                if not retry_allowed:
                    return FetchOutcome(
                        uri=uri,
                        result=None,
                        error="transient",
                        attempts=attempt + 1,
                        retries=retries,
                        transient_failures=transients,
                        backoff_ticks=backoff_total,
                    )
                backoff = self.retry.backoff_ticks(uri, attempt)
                backoff_total += backoff
                self.ticks += 1 + backoff
                retries += 1
                attempt += 1
            except HostDownError:
                self.breakers.record_failure(site, self.ticks)
                return FetchOutcome(
                    uri=uri,
                    result=None,
                    error="outage",
                    attempts=attempt + 1,
                    retries=retries,
                    transient_failures=transients,
                    backoff_ticks=backoff_total,
                )
            except WebError:
                # A clean 404: the site answered, so the breaker sees health.
                self.breakers.record_success(site)
                return FetchOutcome(
                    uri=uri,
                    result=None,
                    error="missing",
                    attempts=attempt + 1,
                    retries=retries,
                    transient_failures=transients,
                    backoff_ticks=backoff_total,
                )
            else:
                self.breakers.record_success(site)
                cost = getattr(self.web, "last_fetch_cost", 1)
                self.ticks += cost - 1
                return FetchOutcome(
                    uri=uri,
                    result=result,
                    error=None,
                    attempts=attempt + 1,
                    retries=retries,
                    transient_failures=transients,
                    backoff_ticks=backoff_total,
                    cost=cost,
                )
