"""Weblog mining: hyperlinks as implicit votes (§4).

The paper's rating data does not come from rating forms — it is *mined*:

  "some crawlers extract certain hyperlinks from weblogs and analyze
   their makeup and content.  Hereby, those referring to product pages
   from large catalogs like Amazon count as implicit votes for these
   goods.  Mappings between hyperlinks and some sort of unique
   identifier are required … Unique identifiers exist for some product
   groups like books, which are given ISBNs.  Efforts to enhance weblogs
   with explicit, machine-readable rating information have also been
   proposed … For instance, BLAM! allows creating book ratings and helps
   embedding these into machine-readable weblogs."

This module reproduces that pipeline:

* :class:`WeblogPost` / :func:`render_weblog` — agents author HTML-ish
  posts whose prose links to shop product pages, plus optional embedded
  BLAM!-style explicit rating annotations;
* :class:`LinkMiner` — extracts hyperlinks, maps recognized shop URLs to
  ISBN identifiers (the hyperlink → unique-identifier mapping), converts
  them into implicit ``+1.0`` ratings, and reads explicit annotations
  when present (explicit beats implicit for the same product);
* :func:`publish_weblogs` — hosts one weblog document per agent on the
  simulated Web so a crawler can mine a whole community the way the
  paper's crawlers mined All Consuming.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..core.models import Dataset, Rating, validate_score
from ..core.similarity import isclose
from .network import SimulatedWeb

__all__ = [
    "LinkMiner",
    "WeblogPost",
    "publish_weblogs",
    "render_weblog",
    "weblog_uri",
]

#: Shop URL patterns the miner recognizes, mirroring the paper's Amazon
#: example.  Each pattern captures the raw product key.
SHOP_URL_PATTERNS = (
    re.compile(r"https?://www\.amazon\.com/exec/obidos/ASIN/(\d{10,13})"),
    re.compile(r"https?://www\.amazon\.com/dp/(\d{10,13})"),
    re.compile(r"https?://shop\.example\.org/book/(\d{10,13})"),
)

#: BLAM!-style machine-readable rating annotation embedded in a post:
#: <span class="blam-rating" data-isbn="isbn:..." data-value="0.8"></span>
_BLAM_ANNOTATION = re.compile(
    r'<span\s+class="blam-rating"\s+data-isbn="(?P<isbn>[^"]+)"'
    r'\s+data-value="(?P<value>-?\d+(?:\.\d+)?)"\s*>\s*</span>'
)

_HYPERLINK = re.compile(r'<a\s+href="(?P<href>[^"]+)"\s*>(?P<anchor>[^<]*)</a>')


@dataclass(frozen=True, slots=True)
class WeblogPost:
    """One diary entry: prose with product links and explicit ratings.

    ``links`` are raw shop URLs mentioned in the prose; ``explicit``
    maps product identifiers to BLAM!-style explicit rating values.
    """

    title: str
    body: str = ""
    links: tuple[str, ...] = ()
    explicit: dict[str, float] = field(default_factory=dict)


def product_page_url(identifier: str) -> str:
    """The shop URL for a product identifier (``isbn:<digits>``).

    Inverse of the miner's URL → identifier mapping; used by the
    publisher to embed realistic hyperlinks.
    """
    digits = identifier.split(":", 1)[-1]
    return f"https://www.amazon.com/dp/{digits}"


def render_weblog(author_name: str, posts: list[WeblogPost]) -> str:
    """Render posts into the HTML-ish document a crawler would fetch."""
    lines = ["<html><head>", f"<title>{author_name}'s weblog</title>", "</head><body>"]
    for post in posts:
        lines.append(f"<h2>{post.title}</h2>")
        if post.body:
            lines.append(f"<p>{post.body}</p>")
        for url in post.links:
            lines.append(f'<p>Currently reading: <a href="{url}">this book</a></p>')
        for identifier in sorted(post.explicit):
            value = post.explicit[identifier]
            lines.append(
                f'<span class="blam-rating" data-isbn="{identifier}" '
                f'data-value="{value}"></span>'
            )
    lines.append("</body></html>")
    return "\n".join(lines)


@dataclass
class LinkMiner:
    """Extracts implicit and explicit ratings from a weblog document.

    ``known_products`` restricts mining to the shared catalog: a link to
    an unknown ISBN is recorded in :attr:`unmapped` instead of producing
    a rating (the mapping problem the paper mentions — "mappings between
    hyperlinks and some sort of unique identifier are required").
    """

    known_products: frozenset[str] = frozenset()
    unmapped: list[str] = field(default_factory=list)

    def extract_links(self, document: str) -> list[str]:
        """All hyperlink targets in the document, in order."""
        return [m.group("href") for m in _HYPERLINK.finditer(document)]

    def map_to_identifier(self, url: str) -> str | None:
        """Map a shop URL to an ``isbn:`` identifier, or ``None``."""
        for pattern in SHOP_URL_PATTERNS:
            match = pattern.match(url)
            if match:
                return f"isbn:{match.group(1)}"
        return None

    def mine(self, agent: str, document: str) -> list[Rating]:
        """Mine *document* for ratings attributed to *agent*.

        Hyperlinks to recognized product pages yield implicit ``+1.0``
        votes; BLAM! annotations yield explicit values and override the
        implicit vote for the same product.  Repeated links to one
        product collapse into one rating.
        """
        ratings: dict[str, float] = {}
        for url in self.extract_links(document):
            identifier = self.map_to_identifier(url)
            if identifier is None:
                continue
            if self.known_products and identifier not in self.known_products:
                self.unmapped.append(identifier)
                continue
            ratings.setdefault(identifier, 1.0)
        for match in _BLAM_ANNOTATION.finditer(document):
            identifier = match.group("isbn")
            if self.known_products and identifier not in self.known_products:
                self.unmapped.append(identifier)
                continue
            try:
                # Mined weblog markup is untrusted input: the shared §3.1
                # validator is the one place that decides what a legal
                # rating is (range *and* NaN rejection).
                ratings[identifier] = validate_score(
                    float(match.group("value")), kind="mined rating"
                )
            except ValueError:
                continue
        return [
            Rating(agent=agent, product=product, value=value)
            for product, value in sorted(ratings.items())
        ]


def weblog_uri(agent_uri: str) -> str:
    """The canonical URI an agent's weblog is hosted at."""
    return agent_uri.rstrip("/") + "/weblog"


def publish_weblogs(
    web: SimulatedWeb, dataset: Dataset, posts_per_log: int = 3
) -> list[str]:
    """Host one weblog per agent, rendering its ratings as product links.

    Positive implicit ratings become hyperlinks; non-unit ratings become
    BLAM! annotations.  Returns the hosted weblog URIs.  Together with
    :class:`LinkMiner` this closes the §4 loop: what an agent rates is
    recoverable from its published weblog alone.
    """
    uris: list[str] = []
    for agent_uri in sorted(dataset.agents):
        ratings = dataset.ratings_of(agent_uri)
        implicit = [p for p, v in sorted(ratings.items()) if isclose(v, 1.0)]
        explicit = {p: v for p, v in ratings.items() if not isclose(v, 1.0)}
        posts: list[WeblogPost] = []
        chunk = max(1, (len(implicit) + posts_per_log - 1) // posts_per_log)
        for index in range(0, len(implicit), chunk):
            batch = implicit[index : index + chunk]
            posts.append(
                WeblogPost(
                    title=f"Reading notes #{index // chunk + 1}",
                    body="Some books I have been consuming lately.",
                    links=tuple(product_page_url(p) for p in batch),
                )
            )
        if explicit:
            posts.append(
                WeblogPost(title="Rated books", explicit=dict(explicit))
            )
        if not posts:
            posts.append(WeblogPost(title="Hello world", body="Nothing yet."))
        uri = weblog_uri(agent_uri)
        web.publish(uri, render_weblog(str(dataset.agents[agent_uri]), posts))
        uris.append(uri)
    return uris
