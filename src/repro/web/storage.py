"""The crawler's local replica: an embedded document store.

"Tailored crawlers search the Web for weblogs and ensure data freshness"
(§4.1).  The store keeps the fetched documents (raw text plus version and
fetch tick), parses them on demand, and assembles the partial
:class:`~repro.core.models.Dataset` the recommender computes from — which
is the paper's central architectural point: recommendations are computed
*locally* from a replica, never against the live Web.

The store persists to JSON lines so a crawl can be resumed across
processes.
"""

from __future__ import annotations

import json
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path

from ..core.models import Dataset, Product
from ..core.taxonomy import Taxonomy
from ..semweb.foaf import parse_agent_homepage, parse_catalog, parse_taxonomy
from ..semweb.serializer import ParseError, parse_ntriples

__all__ = ["DocumentStore", "StoredDocument"]


@dataclass(frozen=True, slots=True)
class StoredDocument:
    """One replicated document with its provenance metadata."""

    uri: str
    body: str
    version: int
    fetched_at: int


class DocumentStore:
    """URI-keyed replica of fetched documents with dataset assembly.

    ``kind`` hints ("agent", "taxonomy", "catalog", "weblog") are
    recorded at put time by the crawler so assembly does not have to
    sniff document contents.  Weblog documents are opaque to
    :meth:`assemble_dataset` (they are HTML, not RDF); the replicator
    mines them separately via :class:`repro.web.weblog.LinkMiner`.
    """

    def __init__(self) -> None:
        self._documents: dict[str, StoredDocument] = {}
        self._kinds: dict[str, str] = {}

    # -- replica maintenance ---------------------------------------------------

    def put(
        self,
        uri: str,
        body: str,
        version: int,
        fetched_at: int,
        kind: str = "agent",
    ) -> None:
        """Store (or refresh) the replica of *uri*."""
        if kind not in ("agent", "taxonomy", "catalog", "weblog"):
            raise ValueError(f"unknown document kind {kind!r}")
        self._documents[uri] = StoredDocument(
            uri=uri, body=body, version=version, fetched_at=fetched_at
        )
        self._kinds[uri] = kind

    def get(self, uri: str) -> StoredDocument | None:
        return self._documents.get(uri)

    def kind(self, uri: str) -> str | None:
        return self._kinds.get(uri)

    def __contains__(self, uri: str) -> bool:
        return uri in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def uris(self, kind: str | None = None) -> Iterator[str]:
        """URIs in the replica, optionally filtered by document kind."""
        for uri in self._documents:
            if kind is None or self._kinds.get(uri) == kind:
                yield uri

    def staleness(self, uri: str, live_version: int) -> int:
        """Versions the replica of *uri* lags behind *live_version*."""
        document = self._documents.get(uri)
        if document is None:
            return live_version
        return max(0, live_version - document.version)

    # -- dataset assembly ----------------------------------------------------------

    def assemble_dataset(self) -> tuple[Dataset, list[str]]:
        """Parse every replicated document into one partial :class:`Dataset`.

        Returns ``(dataset, failures)`` where *failures* lists URIs whose
        documents failed to parse (they are skipped, as a real crawler
        must).  Trust statements pointing at agents whose homepages were
        never crawled are kept — the trust metrics simply see them as
        fringe nodes — but ratings of unknown products are kept too, since
        the catalog document may legitimately lag the community.  The
        returned dataset is therefore *not* validated.
        """
        dataset = Dataset()
        failures: list[str] = []
        for uri in sorted(self.uris(kind="catalog")):
            products = self._parse_catalog(uri, failures)
            for product in products.values():
                dataset.add_product(product)
        for uri in sorted(self.uris(kind="agent")):
            document = self._documents[uri]
            try:
                graph = parse_ntriples(document.body)
                agent, trust, ratings = parse_agent_homepage(graph)
            except (ParseError, ValueError):
                failures.append(uri)
                continue
            dataset.add_agent(agent)
            for statement in trust:
                dataset.add_trust(statement)
            for rating in ratings:
                dataset.add_rating(rating)
        return dataset, failures

    def assemble_taxonomy(self) -> Taxonomy | None:
        """Parse the replicated taxonomy document, if any."""
        for uri in sorted(self.uris(kind="taxonomy")):
            document = self._documents[uri]
            try:
                return parse_taxonomy(parse_ntriples(document.body))
            except (ParseError, ValueError):
                continue
        return None

    def _parse_catalog(self, uri: str, failures: list[str]) -> dict[str, Product]:
        document = self._documents[uri]
        try:
            return parse_catalog(parse_ntriples(document.body))
        except (ParseError, ValueError):
            failures.append(uri)
            return {}

    # -- persistence ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the replica as JSON lines (deterministic order)."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for uri in sorted(self._documents):
                document = self._documents[uri]
                record = {
                    "uri": document.uri,
                    "body": document.body,
                    "version": document.version,
                    "fetched_at": document.fetched_at,
                    "kind": self._kinds[uri],
                }
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")

    @classmethod
    def load(cls, path: str | Path) -> "DocumentStore":
        """Restore a replica saved by :meth:`save`."""
        store = cls()
        path = Path(path)
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                store.put(
                    uri=record["uri"],
                    body=record["body"],
                    version=int(record["version"]),
                    fetched_at=int(record["fetched_at"]),
                    kind=record.get("kind", "agent"),
                )
        return store
