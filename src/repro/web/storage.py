"""The crawler's local replica: an embedded document store.

"Tailored crawlers search the Web for weblogs and ensure data freshness"
(§4.1).  The store keeps the fetched documents (raw text plus version and
fetch tick), parses them on demand, and assembles the partial
:class:`~repro.core.models.Dataset` the recommender computes from — which
is the paper's central architectural point: recommendations are computed
*locally* from a replica, never against the live Web.

The store persists to JSON lines so a crawl can be resumed across
processes.
"""

from __future__ import annotations

import json
from collections.abc import Iterator
from dataclasses import dataclass, replace
from pathlib import Path

from ..core.models import Dataset, Product
from ..core.taxonomy import Taxonomy
from ..semweb.foaf import parse_agent_homepage, parse_catalog, parse_taxonomy
from ..semweb.serializer import ParseError, parse_ntriples

__all__ = ["DocumentStore", "StoredDocument"]


@dataclass(frozen=True, slots=True)
class StoredDocument:
    """One replicated document with its provenance metadata.

    ``degraded`` marks a replica that is being served although its last
    refresh attempt failed (stale fallback) — consumers keep working
    from it, and freshness policies can prioritize repairing it.
    """

    uri: str
    body: str
    version: int
    fetched_at: int
    degraded: bool = False


class DocumentStore:
    """URI-keyed replica of fetched documents with dataset assembly.

    ``kind`` hints ("agent", "taxonomy", "catalog", "weblog") are
    recorded at put time by the crawler so assembly does not have to
    sniff document contents.  Weblog documents are opaque to
    :meth:`assemble_dataset` (they are HTML, not RDF); the replicator
    mines them separately via :class:`repro.web.weblog.LinkMiner`.
    """

    def __init__(self) -> None:
        self._documents: dict[str, StoredDocument] = {}
        self._kinds: dict[str, str] = {}
        self._quarantined: dict[str, str] = {}
        #: ``(line number, reason)`` pairs for records skipped by :meth:`load`.
        self.load_errors: list[tuple[int, str]] = []

    # -- replica maintenance ---------------------------------------------------

    def put(
        self,
        uri: str,
        body: str,
        version: int,
        fetched_at: int,
        kind: str = "agent",
        degraded: bool = False,
    ) -> None:
        """Store (or refresh) the replica of *uri*."""
        if kind not in ("agent", "taxonomy", "catalog", "weblog"):
            raise ValueError(f"unknown document kind {kind!r}")
        self._documents[uri] = StoredDocument(
            uri=uri, body=body, version=version, fetched_at=fetched_at,
            degraded=degraded,
        )
        self._kinds[uri] = kind

    def get(self, uri: str) -> StoredDocument | None:
        return self._documents.get(uri)

    def kind(self, uri: str) -> str | None:
        return self._kinds.get(uri)

    def mark_degraded(self, uri: str) -> None:
        """Stamp the replica of *uri* as degraded (stale fallback in use)."""
        document = self._documents.get(uri)
        if document is not None and not document.degraded:
            self._documents[uri] = replace(document, degraded=True)

    def quarantine(self, uri: str, body: str) -> None:
        """Hold a corrupt fetched body aside without touching the replica.

        A corrupted download must never clobber a good replica; assembly
        ignores quarantined bodies entirely.  Re-quarantining keeps only
        the newest body.
        """
        self._quarantined[uri] = body

    def degraded_uris(self) -> Iterator[str]:
        """URIs whose replica is currently stamped degraded."""
        for uri, document in self._documents.items():
            if document.degraded:
                yield uri

    def quarantined_uris(self) -> Iterator[str]:
        """URIs with a quarantined (corrupt) body held aside."""
        return iter(self._quarantined)

    def coverage_summary(self) -> dict[str, int]:
        """Replica health at a glance: totals per degradation state."""
        degraded = sum(1 for doc in self._documents.values() if doc.degraded)
        return {
            "documents": len(self._documents),
            "degraded": degraded,
            "quarantined": len(self._quarantined),
        }

    def __contains__(self, uri: str) -> bool:
        return uri in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def uris(self, kind: str | None = None) -> Iterator[str]:
        """URIs in the replica, optionally filtered by document kind."""
        for uri in self._documents:
            if kind is None or self._kinds.get(uri) == kind:
                yield uri

    def staleness(self, uri: str, live_version: int) -> int:
        """Versions the replica of *uri* lags behind *live_version*."""
        document = self._documents.get(uri)
        if document is None:
            return live_version
        return max(0, live_version - document.version)

    # -- dataset assembly ----------------------------------------------------------

    def assemble_dataset(self) -> tuple[Dataset, list[str]]:
        """Parse every replicated document into one partial :class:`Dataset`.

        Returns ``(dataset, failures)`` where *failures* lists URIs whose
        documents failed to parse (they are skipped, as a real crawler
        must).  Trust statements pointing at agents whose homepages were
        never crawled are kept — the trust metrics simply see them as
        fringe nodes — but ratings of unknown products are kept too, since
        the catalog document may legitimately lag the community.  The
        returned dataset is therefore *not* validated.
        """
        dataset = Dataset()
        failures: list[str] = []
        for uri in sorted(self.uris(kind="catalog")):
            products = self._parse_catalog(uri, failures)
            for product in products.values():
                dataset.add_product(product)
        for uri in sorted(self.uris(kind="agent")):
            document = self._documents[uri]
            try:
                graph = parse_ntriples(document.body)
                agent, trust, ratings = parse_agent_homepage(graph)
            except (ParseError, ValueError):
                failures.append(uri)
                continue
            dataset.add_agent(agent)
            for statement in trust:
                dataset.add_trust(statement)
            for rating in ratings:
                dataset.add_rating(rating)
        return dataset, failures

    def assemble_taxonomy(self) -> Taxonomy | None:
        """Parse the replicated taxonomy document, if any."""
        for uri in sorted(self.uris(kind="taxonomy")):
            document = self._documents[uri]
            try:
                return parse_taxonomy(parse_ntriples(document.body))
            except (ParseError, ValueError):
                continue
        return None

    def _parse_catalog(self, uri: str, failures: list[str]) -> dict[str, Product]:
        document = self._documents[uri]
        try:
            return parse_catalog(parse_ntriples(document.body))
        except (ParseError, ValueError):
            failures.append(uri)
            return {}

    # -- persistence ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the replica as JSON lines (deterministic order)."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for uri in sorted(self._documents):
                document = self._documents[uri]
                record = {
                    "uri": document.uri,
                    "body": document.body,
                    "version": document.version,
                    "fetched_at": document.fetched_at,
                    "kind": self._kinds[uri],
                    "degraded": document.degraded,
                }
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")

    @classmethod
    def load(cls, path: str | Path, strict: bool = False) -> "DocumentStore":
        """Restore a replica saved by :meth:`save`.

        A crawl that crashed mid-save leaves truncated or garbled lines;
        by default those are skipped and reported through the returned
        store's :attr:`load_errors` (``(line number, reason)`` pairs) so
        the surviving replica is still resumable.  ``strict=True``
        restores the raise-on-first-error behavior.
        """
        store = cls()
        path = Path(path)
        with path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    if not isinstance(record, dict):
                        raise ValueError("record is not a JSON object")
                    store.put(
                        uri=str(record["uri"]),
                        body=str(record["body"]),
                        version=int(record["version"]),
                        fetched_at=int(record["fetched_at"]),
                        kind=record.get("kind", "agent"),
                        degraded=bool(record.get("degraded", False)),
                    )
                except (KeyError, TypeError, ValueError) as error:
                    if strict:
                        raise
                    store.load_errors.append((line_number, str(error)))
        return store
