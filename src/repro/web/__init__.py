"""Simulated decentralized Web: hosting, crawling, local replicas."""

from .faults import (
    CircuitBreakerRegistry,
    FaultPlan,
    FaultyWeb,
    FetchOutcome,
    HostDownError,
    ResilientFetcher,
    RetryPolicy,
    TransientWebError,
    site_of,
)
from .freshness import FreshnessPolicy, plan_refresh
from .crawler import CrawlReport, Crawler, publish_community
from .network import FetchResult, SimulatedWeb, WebError
from .replicator import (
    CommunityReplicator,
    ReplicationReport,
    publish_split_community,
)
from .storage import DocumentStore, StoredDocument
from .weblog import LinkMiner, WeblogPost, publish_weblogs, render_weblog, weblog_uri

__all__ = [
    "CircuitBreakerRegistry",
    "CommunityReplicator",
    "CrawlReport",
    "Crawler",
    "DocumentStore",
    "FaultPlan",
    "FaultyWeb",
    "FetchOutcome",
    "FetchResult",
    "FreshnessPolicy",
    "HostDownError",
    "LinkMiner",
    "ReplicationReport",
    "ResilientFetcher",
    "RetryPolicy",
    "SimulatedWeb",
    "StoredDocument",
    "TransientWebError",
    "WebError",
    "WeblogPost",
    "plan_refresh",
    "publish_community",
    "publish_split_community",
    "publish_weblogs",
    "render_weblog",
    "site_of",
    "weblog_uri",
]
