"""Recrawl scheduling: which replicas to refresh under a fetch budget.

"Tailored crawlers search the Web for weblogs and ensure data freshness"
(§4.1) — but a real crawler never has the budget to re-fetch everything,
so it must *choose*.  :class:`FreshnessPolicy` ranks the replica's
documents for refreshing; :func:`plan_refresh` applies a policy and a
budget to a :class:`~repro.web.storage.DocumentStore` and returns the
fetch list.  Policies are deliberately cheap heuristics over metadata
the store already has (no content inspection):

* ``oldest_first`` — refresh the longest-unvisited documents (age-based,
  the classic freshness heuristic);
* ``round_robin`` — deterministic rotation keyed by the pass number, so
  every document is refreshed once per full cycle regardless of budget;
* ``stale_first`` — probe live versions (cheap HEAD-style calls) and
  refresh only documents whose version actually advanced, oldest lag
  first.  Costs one probe per document but never wastes a fetch.
* ``degraded_first`` — repair replicas stamped degraded (their last
  refresh failed and a stale copy is in service) before anything else,
  then fall back to ``stale_first`` ordering for the healthy rest.

Probe traffic is charged to the web's ``probe_count``, so policies that
probe (``stale_first``, ``degraded_first``) pay for their accuracy.
"""

from __future__ import annotations

from typing import Literal

from .network import SimulatedWeb
from .storage import DocumentStore

__all__ = ["FreshnessPolicy", "plan_refresh"]

PolicyName = Literal["oldest_first", "round_robin", "stale_first", "degraded_first"]


class FreshnessPolicy:
    """Ranks replicated documents for refreshing (see module docstring)."""

    def __init__(self, name: PolicyName = "oldest_first") -> None:
        if name not in ("oldest_first", "round_robin", "stale_first", "degraded_first"):
            raise ValueError(f"unknown freshness policy {name!r}")
        self.name = name

    def order(
        self,
        store: DocumentStore,
        web: SimulatedWeb,
        pass_number: int = 0,
        kind: str | None = "agent",
    ) -> list[str]:
        """All candidate URIs, most refresh-worthy first."""
        uris = sorted(store.uris(kind=kind))
        if not uris:
            return []
        if self.name == "oldest_first":
            return sorted(
                uris, key=lambda uri: (store.get(uri).fetched_at, uri)
            )
        if self.name == "round_robin":
            offset = pass_number % len(uris)
            return uris[offset:] + uris[:offset]
        if self.name == "degraded_first":
            # Repair degraded replicas first (oldest fetch first), then
            # the healthy-but-stale rest in stale_first order.
            degraded = sorted(
                (uri for uri in uris if store.get(uri).degraded),
                key=lambda uri: (store.get(uri).fetched_at, uri),
            )
            healthy = [uri for uri in uris if not store.get(uri).degraded]
            return degraded + self._stale_order(healthy, store, web)
        # stale_first: probe versions, keep only actually-stale documents.
        return self._stale_order(uris, store, web)

    @staticmethod
    def _stale_order(
        uris: list[str], store: DocumentStore, web: SimulatedWeb
    ) -> list[str]:
        staleness = {
            uri: store.staleness(uri, web.version(uri)) for uri in uris
        }
        stale = [uri for uri in uris if staleness[uri] > 0]
        return sorted(stale, key=lambda uri: (-staleness[uri], uri))


def plan_refresh(
    store: DocumentStore,
    web: SimulatedWeb,
    budget: int,
    policy: FreshnessPolicy | None = None,
    pass_number: int = 0,
    kind: str | None = "agent",
) -> list[str]:
    """The URIs one refresh pass should fetch, at most *budget* of them."""
    if budget < 0:
        raise ValueError("budget must be non-negative")
    policy = policy or FreshnessPolicy()
    return policy.order(store, web, pass_number=pass_number, kind=kind)[:budget]
