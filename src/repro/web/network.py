"""A simulated decentralized Web of documents.

The Semantic Web "constitutes an inherently data-centric environment
model.  Messages are exchanged by publishing or updating documents …
communication becomes restricted to asynchronous message exchange" (§2).
:class:`SimulatedWeb` models exactly that: a URI-addressed document space
where publishers *stage* updates that only become visible once delivered,
so consumers (crawlers) routinely observe stale state — the property EX11
measures.

Documents are stored and fetched as *serialized text*, not parsed graphs:
consumers must run the real parse path, including its error handling.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

__all__ = ["FetchResult", "SimulatedWeb", "WebError"]


class WebError(KeyError):
    """Raised when fetching a URI that hosts no document (a 404)."""


@dataclass(frozen=True, slots=True)
class FetchResult:
    """One successful fetch: the document body and its version number."""

    uri: str
    body: str
    version: int


class SimulatedWeb:
    """URI → document hosting with staged (asynchronous) updates.

    * :meth:`publish` makes a document immediately visible (initial
      hosting).
    * :meth:`stage_update` records a new version that stays *invisible*
      until :meth:`deliver` runs — modelling the publish/crawl lag of a
      decentralized system.  Staging several updates for one URI keeps
      only the newest.
    * :meth:`fetch` returns the visible version and counts traffic, so
      experiments can charge crawlers a fetch budget.

    All traffic is counted, not just successes: ``fetch_count`` tallies
    delivered documents, ``error_count`` failed fetches (404s, plus any
    fault a wrapping :class:`~repro.web.faults.FaultyWeb` injects), and
    ``probe_count`` the cheap :meth:`version` HEAD probes freshness
    policies rely on — so budgets and benchmarks charge every request.
    """

    def __init__(self) -> None:
        self._visible: dict[str, tuple[str, int]] = {}
        self._staged: dict[str, str] = {}
        self.fetch_count = 0
        self.error_count = 0
        self.probe_count = 0

    # -- hosting -------------------------------------------------------------

    def publish(self, uri: str, body: str) -> None:
        """Host *body* at *uri*, immediately visible (version 1 or bumped)."""
        if not uri:
            raise ValueError("document URI must be non-empty")
        _, version = self._visible.get(uri, ("", 0))
        self._visible[uri] = (body, version + 1)

    def stage_update(self, uri: str, body: str) -> None:
        """Record a new version of *uri*, visible only after :meth:`deliver`.

        Staging an update for an unhosted URI is allowed: delivery then
        makes the document appear (a newly created homepage).
        """
        if not uri:
            raise ValueError("document URI must be non-empty")
        self._staged[uri] = body

    def deliver(self) -> int:
        """Make all staged updates visible; return how many were applied."""
        applied = len(self._staged)
        for uri, body in self._staged.items():
            self.publish(uri, body)
        self._staged.clear()
        return applied

    def pending_updates(self) -> int:
        """Number of staged-but-undelivered updates."""
        return len(self._staged)

    # -- consumption -----------------------------------------------------------

    def fetch(self, uri: str) -> FetchResult:
        """Fetch the visible document at *uri*; raises :class:`WebError` on 404."""
        entry = self._visible.get(uri)
        if entry is None:
            self.error_count += 1
            raise WebError(uri)
        self.fetch_count += 1
        body, version = entry
        return FetchResult(uri=uri, body=body, version=version)

    def exists(self, uri: str) -> bool:
        """Whether a visible document is hosted at *uri*."""
        return uri in self._visible

    def version(self, uri: str) -> int:
        """Visible version of *uri* (0 when unhosted) — cheap HEAD request."""
        self.probe_count += 1
        entry = self._visible.get(uri)
        return entry[1] if entry else 0

    @property
    def total_traffic(self) -> int:
        """Every request this web ever answered: fetches, errors, probes."""
        return self.fetch_count + self.error_count + self.probe_count

    def uris(self) -> Iterator[str]:
        """All URIs currently hosting visible documents."""
        return iter(self._visible)

    def __len__(self) -> int:
        return len(self._visible)

    def __contains__(self, uri: str) -> bool:
        return uri in self._visible
