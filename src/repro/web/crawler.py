"""A link-following crawler over the simulated Web.

The paper's infrastructure keeps local replicas fresh through "tailored
crawlers [that] search the Web for weblogs and ensure data freshness"
(§4.1).  The crawler here walks ``foaf:knows`` links breadth-first from
seed agents, honours a per-crawl *fetch budget* (politeness / cost bound),
records parse failures without aborting, and supports *refresh* passes
that re-fetch only documents whose live version advanced (conditional-GET
semantics via cheap version probes).

Together with :class:`~repro.web.network.SimulatedWeb` and
:class:`~repro.web.storage.DocumentStore` this closes the decentralized
loop: publish → crawl → assemble partial dataset → recommend locally.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field, replace

from ..core.models import Dataset, clamp_score
from ..obs import Stopwatch, get_metrics, get_tracer
from ..core.taxonomy import Taxonomy
from ..semweb.foaf import (
    parse_agent_homepage,
    publish_agent,
    publish_catalog,
    publish_taxonomy,
)
from ..semweb.namespace import FOAF
from ..semweb.rdf import URIRef
from ..semweb.serializer import ParseError, parse_ntriples, serialize_ntriples
from .faults import CircuitBreakerRegistry, ResilientFetcher, RetryPolicy
from .network import SimulatedWeb
from .storage import DocumentStore

__all__ = ["CrawlReport", "Crawler", "publish_community"]

#: Default URIs of the globally accessible documents (§3.1: the taxonomy,
#: product set and descriptor assignment "must hold globally").
DEFAULT_TAXONOMY_URI = "http://repro.example.org/docs/taxonomy"
DEFAULT_CATALOG_URI = "http://repro.example.org/docs/catalog"


@dataclass(frozen=True, slots=True)
class CrawlReport:
    """Outcome of one crawl, refresh, or global-document pass.

    ``fetched`` counts budget units charged (one per completed transfer
    plus any injected latency ticks).  The failure fields partition the
    URIs whose fetch ultimately failed: ``missing`` (clean 404s) and
    ``unreachable`` (transient retries exhausted, site outages, or open
    circuit breakers).  ``degraded`` lists the subset of failed URIs the
    crawl kept serving from a stale replica; ``quarantined`` lists URIs
    whose freshly fetched body was corrupt and was held aside to protect
    an existing good replica.  The counters (``retries``,
    ``transient_failures``, ``backoff_ticks``, ``breaker_trips``,
    ``breaker_short_circuits``) aggregate the resilience machinery's
    work during the pass.
    """

    fetched: int
    discovered: int
    missing: tuple[str, ...]
    parse_failures: tuple[str, ...]
    budget_exhausted: bool
    frontier_left: tuple[str, ...] = ()
    unreachable: tuple[str, ...] = ()
    degraded: tuple[str, ...] = ()
    quarantined: tuple[str, ...] = ()
    retries: int = 0
    transient_failures: int = 0
    backoff_ticks: int = 0
    breaker_trips: int = 0
    breaker_short_circuits: int = 0
    #: Monotonic wall time of the pass; observability only, excluded from
    #: equality so seeded-run reports still compare reproducibly.
    duration_ms: float = field(default=0.0, compare=False)


class _PassStats:
    """Mutable accumulator for one crawl/refresh pass."""

    def __init__(self) -> None:
        self.missing: list[str] = []
        self.parse_failures: list[str] = []
        self.unreachable: list[str] = []
        self.degraded: list[str] = []
        self.quarantined: list[str] = []
        self.retries = 0
        self.transient_failures = 0
        self.backoff_ticks = 0


@dataclass
class Crawler:
    """Breadth-first FOAF crawler with budget, freshness and fault control.

    ``clock`` advances by one per pass and stamps every stored document,
    so staleness is measurable in passes as well as document versions.

    ``retry`` opts into bounded retries with backoff for transient
    failures (default: fetch exactly once, the historical behavior);
    ``breakers`` holds the per-site circuit breakers, shared across
    passes so repeatedly failing sites stay short-circuited.  When a
    fetch ultimately fails but a stale replica exists, the crawl keeps
    working from the replica (stamped degraded) instead of dropping the
    region of the graph behind it.
    """

    web: SimulatedWeb
    store: DocumentStore = field(default_factory=DocumentStore)
    clock: int = 0
    retry: RetryPolicy | None = None
    breakers: CircuitBreakerRegistry | None = None

    #: Path-trust assigned to a bare ``foaf:knows`` link with no explicit
    #: trust statement, and the floor for distrusted/zero-weight edges.
    DEFAULT_LINK_TRUST = 0.25

    def __post_init__(self) -> None:
        if self.breakers is None:
            self.breakers = CircuitBreakerRegistry()
        self.fetcher = ResilientFetcher(
            web=self.web,
            retry=self.retry or RetryPolicy(max_retries=0),
            breakers=self.breakers,
        )

    def crawl(
        self,
        seeds: list[str],
        budget: int | None = None,
        max_depth: int | None = None,
        prioritize_by_trust: bool = False,
    ) -> CrawlReport:
        """Crawl agent homepages from *seeds*, following ``foaf:knows``.

        Already-replicated, still-fresh documents cost no fetch; link
        extraction still runs on them so the frontier stays complete.
        *budget* bounds the number of fetches, not of visited URIs.

        With ``prioritize_by_trust`` the frontier becomes a best-first
        queue ordered by *path trust* — the product of stated trust
        values along the discovery path — so a budgeted crawl spends its
        fetches on the most-trusted region first.  This matters exactly
        when budgets bind: the trust neighborhood the recommender needs
        is the high-trust region (EX11 measures the difference).
        """
        if budget is not None and budget < 0:
            raise ValueError("budget must be non-negative")
        return self._traced_pass(
            "crawl",
            lambda: self._crawl_pass(seeds, budget, max_depth, prioritize_by_trust),
            seeds=len(seeds),
            budget=budget,
        )

    def _crawl_pass(
        self,
        seeds: list[str],
        budget: int | None,
        max_depth: int | None,
        prioritize_by_trust: bool,
    ) -> CrawlReport:
        self.clock += 1
        fetched = 0
        discovered = 0
        stats = _PassStats()
        trips_before = self.breakers.trips
        shorts_before = self.breakers.short_circuits
        budget_exhausted = False

        queue: deque[tuple[str, int]] = deque()
        heap: list[tuple[float, int, str, int]] = []
        tiebreak = itertools.count()
        best_trust: dict[str, float] = {}
        settled: set[str] = set()
        enqueued: set[str] = set(seeds)
        for uri in seeds:
            best_trust[uri] = 1.0
            if prioritize_by_trust:
                heapq.heappush(heap, (-1.0, next(tiebreak), uri, 0))
            else:
                queue.append((uri, 0))

        while heap if prioritize_by_trust else queue:
            if prioritize_by_trust:
                negative_trust, _, uri, depth = heapq.heappop(heap)
                path_trust = -negative_trust
                # Edge trust <= 1 makes this a max-product Dijkstra: the
                # first pop of a URI carries its best path trust; later
                # heap entries for it are stale.
                if uri in settled:
                    continue
            else:
                uri, depth = queue.popleft()
                path_trust = best_trust.get(uri, 1.0)

            replica = self.store.get(uri)
            is_stale = replica is None or self.web.version(uri) > replica.version
            if is_stale:
                if budget is not None and fetched >= budget:
                    budget_exhausted = True
                    if prioritize_by_trust:
                        heapq.heappush(heap, (-path_trust, next(tiebreak), uri, depth))
                    else:
                        queue.appendleft((uri, depth))
                    break
                status, cost = self._fetch_document(uri, "agent", stats)
                fetched += cost
                if status == "failed":
                    if replica is None:
                        settled.add(uri)
                        continue
                    # Graceful degradation: keep crawling from the stale
                    # replica instead of dropping the region behind it.
                    self.store.mark_degraded(uri)
                    stats.degraded.append(uri)
                replica = self.store.get(uri)
            settled.add(uri)
            assert replica is not None
            if max_depth is not None and depth >= max_depth:
                continue
            for neighbor, weight in self._extract_weighted_links(
                uri, replica.body, stats.parse_failures
            ):
                edge_trust = max(weight, self.DEFAULT_LINK_TRUST)
                neighbor_trust = path_trust * edge_trust
                if neighbor not in enqueued:
                    enqueued.add(neighbor)
                    discovered += 1
                if prioritize_by_trust:
                    if (
                        neighbor not in settled
                        and neighbor_trust > best_trust.get(neighbor, 0.0)
                    ):
                        best_trust[neighbor] = neighbor_trust
                        heapq.heappush(
                            heap,
                            (-neighbor_trust, next(tiebreak), neighbor, depth + 1),
                        )
                elif neighbor not in best_trust:
                    # Plain BFS enqueues each URI exactly once.
                    best_trust[neighbor] = neighbor_trust
                    queue.append((neighbor, depth + 1))

        if prioritize_by_trust:
            left = {uri for _, _, uri, _ in heap if uri not in settled}
            frontier_left = tuple(sorted(left))
        else:
            frontier_left = tuple(uri for uri, _ in queue)
        return self._report(
            stats,
            fetched=fetched,
            discovered=discovered,
            budget_exhausted=budget_exhausted,
            frontier_left=frontier_left,
            trips_before=trips_before,
            shorts_before=shorts_before,
        )

    def refresh(self, budget: int | None = None) -> CrawlReport:
        """Re-fetch replicated agent documents whose live version advanced.

        A replica whose refresh fetch fails stays in service, stamped
        degraded, so consumers never lose data they already had.
        """
        return self._traced_pass(
            "refresh", lambda: self._refresh_pass(budget), budget=budget
        )

    def _refresh_pass(self, budget: int | None) -> CrawlReport:
        self.clock += 1
        fetched = 0
        stats = _PassStats()
        trips_before = self.breakers.trips
        shorts_before = self.breakers.short_circuits
        budget_exhausted = False
        for uri in sorted(self.store.uris(kind="agent")):
            document = self.store.get(uri)
            assert document is not None
            if self.web.version(uri) <= document.version:
                continue
            if budget is not None and fetched >= budget:
                budget_exhausted = True
                break
            status, cost = self._fetch_document(uri, "agent", stats)
            fetched += cost
            if status == "failed":
                self.store.mark_degraded(uri)
                stats.degraded.append(uri)
        return self._report(
            stats,
            fetched=fetched,
            discovered=0,
            budget_exhausted=budget_exhausted,
            trips_before=trips_before,
            shorts_before=shorts_before,
        )

    def fetch_global_documents(
        self,
        taxonomy_uri: str = DEFAULT_TAXONOMY_URI,
        catalog_uri: str = DEFAULT_CATALOG_URI,
    ) -> CrawlReport:
        """Fetch the globally accessible taxonomy and catalog documents."""
        return self._traced_pass(
            "global_documents",
            lambda: self._global_pass(taxonomy_uri, catalog_uri),
        )

    def _global_pass(self, taxonomy_uri: str, catalog_uri: str) -> CrawlReport:
        self.clock += 1
        stats = _PassStats()
        trips_before = self.breakers.trips
        shorts_before = self.breakers.short_circuits
        fetched = 0
        for uri, kind in ((taxonomy_uri, "taxonomy"), (catalog_uri, "catalog")):
            status, cost = self._fetch_document(uri, kind, stats)
            fetched += cost
            if status == "failed" and uri in self.store:
                self.store.mark_degraded(uri)
                stats.degraded.append(uri)
        return self._report(
            stats,
            fetched=fetched,
            discovered=0,
            budget_exhausted=False,
            trips_before=trips_before,
            shorts_before=shorts_before,
        )

    # -- internals ------------------------------------------------------------

    def _traced_pass(
        self, kind: str, run: Callable[[], CrawlReport], **attrs: object
    ) -> CrawlReport:
        """Run one pass under a ``crawl.pass`` span, stamping its duration.

        The span mirrors the returned :class:`CrawlReport` exactly
        (fetched / discovered / quarantined / breaker trips), so a trace
        is evidence of what the pass did, not parallel bookkeeping.
        """
        with get_tracer().span("crawl.pass", kind=kind, **attrs) as span:
            with Stopwatch() as watch:
                report = run()
            report = replace(report, duration_ms=watch.elapsed_ms)
            span.set("fetched", report.fetched)
            span.set("discovered", report.discovered)
            span.set("unreachable", len(report.unreachable))
            span.set("quarantined", len(report.quarantined))
            span.set("breaker_trips", report.breaker_trips)
            metrics = get_metrics()
            metrics.counter("crawl.passes").inc()
            metrics.counter("crawl.fetched").inc(report.fetched)
            metrics.counter("crawl.quarantined").inc(len(report.quarantined))
            metrics.counter("crawl.degraded").inc(len(report.degraded))
        return report

    def _extract_links(
        self, uri: str, body: str, parse_failures: list[str]
    ) -> list[str]:
        return [
            target
            for target, _ in self._extract_weighted_links(uri, body, parse_failures)
        ]

    def _extract_weighted_links(
        self, uri: str, body: str, parse_failures: list[str]
    ) -> list[tuple[str, float]]:
        """``(target, trust weight)`` pairs from a homepage document.

        ``foaf:knows`` links without an accompanying trust statement get
        weight 0.0 (the caller applies :attr:`DEFAULT_LINK_TRUST` as the
        floor); reified trust statements supply their stated value.

        Crawled documents are untrusted input (§3.2, §4): stated weights
        are clamped onto the paper's ``[-1, +1]`` scale via
        :func:`repro.core.models.clamp_score`, and NaN weights are
        dropped like any other malformed statement.
        """
        from ..semweb.namespace import TRUST
        from ..semweb.rdf import Literal

        try:
            graph = parse_ntriples(body)
        except ParseError:
            parse_failures.append(uri)
            return []
        weights: dict[str, float] = {
            str(obj): 0.0
            for _, _, obj in graph.triples((None, FOAF.knows, None))
            if isinstance(obj, URIRef)
        }
        for _, _, statement in graph.triples((None, TRUST.trusts, None)):
            target = graph.value(subject=statement, predicate=TRUST.target)
            value = graph.value(subject=statement, predicate=TRUST.value)
            if isinstance(target, URIRef) and isinstance(value, Literal):
                try:
                    weights[str(target)] = clamp_score(
                        float(value.to_python()), kind="link trust weight"
                    )
                except (TypeError, ValueError):
                    continue
        return sorted(weights.items())

    def _fetch_document(
        self, uri: str, kind: str, stats: _PassStats
    ) -> tuple[str, int]:
        """Fetch *uri* through the resilient fetcher into the store.

        Returns ``(status, cost)``: ``"stored"`` (fresh replica, possibly
        unparseable but recorded), ``"quarantined"`` (corrupt body held
        aside to protect an existing good replica), or ``"failed"``
        (nothing transferred; the caller decides about degradation).
        *cost* is the budget charge — zero for failures.
        """
        outcome = self.fetcher.fetch(uri)
        stats.retries += outcome.retries
        stats.transient_failures += outcome.transient_failures
        stats.backoff_ticks += outcome.backoff_ticks
        if not outcome.ok:
            if outcome.error == "missing":
                stats.missing.append(uri)
            else:
                stats.unreachable.append(uri)
            return "failed", 0
        result = outcome.result
        assert result is not None
        if kind in ("agent", "taxonomy", "catalog"):
            try:
                graph = parse_ntriples(result.body)
                if kind == "agent":
                    parse_agent_homepage(graph)
            except (ParseError, ValueError):
                if uri in self.store:
                    # Never clobber a good replica with a corrupt download.
                    self.store.quarantine(uri, result.body)
                    stats.quarantined.append(uri)
                    return "quarantined", outcome.cost
                # Store anyway: assembly will skip it, a later refresh may
                # pick up a repaired version.
                stats.parse_failures.append(uri)
        self.store.put(
            uri=uri,
            body=result.body,
            version=result.version,
            fetched_at=self.clock,
            kind=kind,
        )
        return "stored", outcome.cost

    def _report(
        self,
        stats: _PassStats,
        *,
        fetched: int,
        discovered: int,
        budget_exhausted: bool,
        frontier_left: tuple[str, ...] = (),
        trips_before: int = 0,
        shorts_before: int = 0,
    ) -> CrawlReport:
        return CrawlReport(
            fetched=fetched,
            discovered=discovered,
            missing=tuple(stats.missing),
            parse_failures=tuple(sorted(set(stats.parse_failures))),
            budget_exhausted=budget_exhausted,
            frontier_left=frontier_left,
            unreachable=tuple(stats.unreachable),
            degraded=tuple(stats.degraded),
            quarantined=tuple(stats.quarantined),
            retries=stats.retries,
            transient_failures=stats.transient_failures,
            backoff_ticks=stats.backoff_ticks,
            breaker_trips=self.breakers.trips - trips_before,
            breaker_short_circuits=self.breakers.short_circuits - shorts_before,
        )


def publish_community(
    web: SimulatedWeb,
    dataset: Dataset,
    taxonomy: Taxonomy,
    taxonomy_uri: str = DEFAULT_TAXONOMY_URI,
    catalog_uri: str = DEFAULT_CATALOG_URI,
) -> tuple[str, str]:
    """Publish a whole community onto *web*.

    One homepage document per agent (at the agent's own URI) plus the two
    globally shared documents.  Returns ``(taxonomy_uri, catalog_uri)``.
    """
    for uri in sorted(dataset.agents):
        agent = dataset.agents[uri]
        graph = publish_agent(agent, dataset.trust_of(uri), dataset.ratings_of(uri))
        web.publish(uri, serialize_ntriples(graph))
    web.publish(taxonomy_uri, serialize_ntriples(publish_taxonomy(taxonomy)))
    web.publish(catalog_uri, serialize_ntriples(publish_catalog(dataset.products)))
    return taxonomy_uri, catalog_uri
