"""Trust metrics substrate: the web of trust and group/scalar metrics."""

from .advogato import Advogato, AdvogatoResult
from .appleseed import Appleseed, AppleseedResult
from .engine import (
    TRUST_AUTO_THRESHOLD,
    numpy_trust_available,
    pack_graph,
    rank_many,
    resolve_trust_engine,
)
from .graph import TrustGraph
from .maxflow import FlowNetwork
from .pagerank import PageRankResult, PersonalizedPageRank
from .scalar import (
    horizon_average_trust,
    multiplicative_path_trust,
    scalar_neighborhood,
)

__all__ = [
    "Advogato",
    "AdvogatoResult",
    "Appleseed",
    "AppleseedResult",
    "FlowNetwork",
    "PageRankResult",
    "PersonalizedPageRank",
    "TRUST_AUTO_THRESHOLD",
    "TrustGraph",
    "horizon_average_trust",
    "multiplicative_path_trust",
    "numpy_trust_available",
    "pack_graph",
    "rank_many",
    "resolve_trust_engine",
    "scalar_neighborhood",
]
