"""Trust metrics substrate: the web of trust and group/scalar metrics."""

from .advogato import Advogato, AdvogatoResult
from .appleseed import Appleseed, AppleseedResult
from .graph import TrustGraph
from .maxflow import FlowNetwork
from .pagerank import PageRankResult, PersonalizedPageRank
from .scalar import (
    horizon_average_trust,
    multiplicative_path_trust,
    scalar_neighborhood,
)

__all__ = [
    "Advogato",
    "AdvogatoResult",
    "Appleseed",
    "AppleseedResult",
    "FlowNetwork",
    "PageRankResult",
    "PersonalizedPageRank",
    "TrustGraph",
    "horizon_average_trust",
    "multiplicative_path_trust",
    "scalar_neighborhood",
]
