"""Scalar trust metrics — the prior art the paper argues is insufficient.

§3.2 notes that "numerous scalar metrics [10, 11] have been proposed for
computing trust between two given individuals", but that neighborhood
formation needs *group* metrics instead.  We implement two representative
scalar metrics so experiments can quantify the difference:

* :func:`multiplicative_path_trust` — Beth/Borcherding/Klein-style
  attenuation: trust along a path is the product of edge weights, and the
  trust in a target is the maximum over all paths.  Computed exactly with
  a Dijkstra-style search (maximizing products of weights in ``(0, 1]`` is
  shortest path under ``-log`` transform; weights equal to 1 are handled
  by the monotone product itself).
* :func:`horizon_average_trust` — naive averaging of the trust statements
  reaching the target within a bounded horizon, attenuated by hop count.

Both treat each target independently, which is exactly why they are
vulnerable to edge-flooding attacks (EX4): every additional attack edge
creates another high-trust path, and nothing bounds the *group* of
admitted agents.
"""

from __future__ import annotations

import heapq

from .graph import TrustGraph

__all__ = [
    "horizon_average_trust",
    "multiplicative_path_trust",
    "scalar_neighborhood",
]


def multiplicative_path_trust(
    graph: TrustGraph,
    source: str,
    max_depth: int | None = None,
) -> dict[str, float]:
    """Best-path product trust from *source* to every reachable agent.

    Only positive edges participate.  The result maps each reachable
    agent (source excluded) to the maximum over all paths of the product
    of edge weights, optionally restricted to paths of at most
    *max_depth* edges.
    """
    if source not in graph:
        raise KeyError(f"unknown source agent {source!r}")
    if max_depth is not None and max_depth < 1:
        raise ValueError("max_depth must be at least 1 when given")

    # Max-product search: a lazy Dijkstra over (-trust, node, depth).
    best: dict[str, float] = {}
    heap: list[tuple[float, str, int]] = [(-1.0, source, 0)]
    settled: set[str] = set()
    while heap:
        negative_trust, node, depth = heapq.heappop(heap)
        trust = -negative_trust
        if node in settled:
            continue
        settled.add(node)
        if node != source:
            best[node] = trust
        if max_depth is not None and depth >= max_depth:
            continue
        for target, weight in graph.positive_successors(node).items():
            if target in settled:
                continue
            candidate = trust * weight
            if candidate > best.get(target, 0.0) and candidate > 0.0:
                # best[] doubles as the frontier bound; final values are
                # assigned on settling.
                heapq.heappush(heap, (-candidate, target, depth + 1))
    return best


def horizon_average_trust(
    graph: TrustGraph,
    source: str,
    max_depth: int = 3,
    attenuation: float = 0.5,
) -> dict[str, float]:
    """Hop-attenuated average of incoming trust statements within a horizon.

    Every agent within *max_depth* positive hops of *source* receives the
    mean of the trust statements pointing at it from other agents in the
    horizon, multiplied by ``attenuation ** (hops - 1)``.  Direct
    statements from the source are taken at face value.
    """
    if not 0.0 < attenuation <= 1.0:
        raise ValueError("attenuation must lie in (0, 1]")
    horizon = graph.within_horizon(source, max_depth)
    levels = horizon.bfs_levels(source)
    scores: dict[str, float] = {}
    for node, level in levels.items():
        if node == source:
            continue
        direct = horizon.weight(source, node)
        if direct is not None:
            scores[node] = direct
            continue
        incoming = [
            weight
            for origin, weight in horizon.predecessors(node).items()
            if origin in levels and weight > 0.0
        ]
        if incoming:
            mean = sum(incoming) / len(incoming)
            scores[node] = mean * attenuation ** max(0, level - 1)
    return scores


def scalar_neighborhood(
    scores: dict[str, float], threshold: float
) -> set[str]:
    """Agents whose scalar trust strictly exceeds *threshold*."""
    return {agent for agent, value in scores.items() if value > threshold}
