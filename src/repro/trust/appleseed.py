"""Appleseed: local group trust computation by spreading activation.

Reimplementation of the metric the paper adopts for trust neighborhood
formation (§3.2, reference [12]: Ziegler & Lausen, *Spreading Activation
Models for Trust Propagation*, IEEE EEE 2004).  The algorithm injects
energy ``in_0`` at the source agent and repeatedly distributes it along
positive trust edges:

* a node keeps the fraction ``(1 - d)`` of its incoming energy as *trust
  rank* and forwards the fraction ``d`` (the spreading factor) to its
  successors, split proportionally to edge weights;
* every discovered node is given a *virtual backward edge* to the source
  with full weight 1.  This is Appleseed's signature trick: it eliminates
  energy sinks (dead-end nodes would otherwise swallow rank), penalizes
  long chains, and makes the computation independent of whether nodes
  happen to have successors;
* iteration stops when no node's rank changed by more than the
  convergence threshold ``T_c`` during the last step.

Unlike Advogato's boolean cut, Appleseed yields a *continuous* rank for
every reached node — exactly what the rank-synthesis stage (§3.4) needs.

Parameters follow the published defaults: ``in_0 = 200``, ``d = 0.85``,
``T_c = 0.01``.  Edge-weight normalization can be linear (proportional to
``w``) or nonlinear (proportional to ``w²``, favoring high-trust edges; the
Appleseed paper recommends it to discourage trust dilution over many weak
edges).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from ..obs import NullSpan, Span, get_metrics, get_tracer

from .graph import TrustGraph

__all__ = ["Appleseed", "AppleseedResult"]

Normalization = Literal["linear", "nonlinear"]
DistrustMode = Literal["ignore", "one_step"]


@dataclass(frozen=True, slots=True)
class AppleseedResult:
    """Outcome of one Appleseed computation.

    ``ranks`` excludes the source itself (its rank is an artifact of the
    backward edges and carries no information).  ``iterations`` counts
    full energy-distribution sweeps; ``converged`` is False only when the
    iteration cap was hit first.
    """

    source: str
    ranks: dict[str, float]
    iterations: int
    converged: bool
    injected: float
    history: list[float] = field(default_factory=list)

    def top(self, limit: int | None = None) -> list[tuple[str, float]]:
        """Ranked agents, highest trust first, ties broken by identifier."""
        ordered = sorted(self.ranks.items(), key=lambda kv: (-kv[1], kv[0]))
        return ordered if limit is None else ordered[:limit]

    def neighborhood(self, threshold: float = 0.0) -> set[str]:
        """Agents whose rank strictly exceeds *threshold*."""
        return {agent for agent, rank in self.ranks.items() if rank > threshold}


class Appleseed:
    """Configured Appleseed metric; call :meth:`compute` per source agent.

    Parameters
    ----------
    spreading_factor:
        ``d`` — share of incoming energy forwarded to successors.  Must
        lie strictly between 0 and 1; 0.85 is the published default.
        Low ``d`` concentrates rank near the source; high ``d`` explores
        deeper but converges more slowly.
    convergence_threshold:
        ``T_c`` — iteration stops when every rank changed by at most this
        much in one sweep.
    max_iterations:
        Safety cap; hitting it sets ``converged=False`` on the result.
    normalization:
        ``"linear"`` splits forwarded energy proportionally to edge
        weights; ``"nonlinear"`` proportionally to squared weights.
    max_depth:
        Optional exploration horizon (hops from the source).  Mirrors the
        paper's "exploring the social network within predefined ranges
        only"; ``None`` explores the full reachable component.
    backward_propagation:
        When ``True`` (the published algorithm), every discovered node
        carries the virtual weight-1 edge back to the source.  ``False``
        disables it — an ablation switch: without backward edges,
        dead-end nodes swallow energy, long chains are not penalized,
        and ranks inflate toward sinks (measured by the ablation bench).
    distrust_mode:
        ``"ignore"`` discards negative edges entirely (default).
        ``"one_step"`` additionally applies one post-convergence round of
        distrust: each ranked agent subtracts rank from agents it
        distrusts, proportional to its own rank, the edge magnitude and
        the spreading factor.  Resulting ranks are floored at zero.  This
        approximates the single-step distrust propagation sketched in the
        Appleseed paper (distrust must not propagate transitively —
        "the enemy of my enemy" is *not* my friend).
    engine:
        ``"python"`` (default) runs the dict loops below — the oracle.
        ``"numpy"`` runs whole sweeps as sparse matrix-vector products
        over a packed :class:`~repro.perf.trustmatrix.TrustMatrix`;
        ``"auto"`` picks numpy for graphs big enough to amortize the
        pack.  Engines agree within 1e-9 (see
        :mod:`repro.trust.engine`); the default stays on the oracle so
        direct constructions remain bit-identical to the published
        algorithm — entry points opt in explicitly.
    """

    def __init__(
        self,
        spreading_factor: float = 0.85,
        convergence_threshold: float = 0.01,
        max_iterations: int = 1000,
        normalization: Normalization = "linear",
        max_depth: int | None = None,
        distrust_mode: DistrustMode = "ignore",
        backward_propagation: bool = True,
        engine: str = "python",
    ) -> None:
        if not 0.0 < spreading_factor < 1.0:
            raise ValueError("spreading_factor must lie strictly in (0, 1)")
        if convergence_threshold <= 0.0:
            raise ValueError("convergence_threshold must be positive")
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if normalization not in ("linear", "nonlinear"):
            raise ValueError(f"unknown normalization {normalization!r}")
        if distrust_mode not in ("ignore", "one_step"):
            raise ValueError(f"unknown distrust_mode {distrust_mode!r}")
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be at least 1 when given")
        if engine not in ("auto", "numpy", "python"):
            raise ValueError(f"unknown engine {engine!r}")
        self.spreading_factor = spreading_factor
        self.convergence_threshold = convergence_threshold
        self.max_iterations = max_iterations
        self.normalization = normalization
        self.max_depth = max_depth
        self.distrust_mode = distrust_mode
        self.backward_propagation = backward_propagation
        self.engine = engine

    # -- main algorithm -----------------------------------------------------

    def compute(
        self, graph: TrustGraph, source: str, injection: float = 200.0
    ) -> AppleseedResult:
        """Run Appleseed from *source* with *injection* units of energy."""
        if injection <= 0.0:
            raise ValueError("injection energy must be positive")
        if source not in graph:
            raise KeyError(f"unknown source agent {source!r}")
        if self.max_depth is not None:
            graph = graph.within_horizon(source, self.max_depth)
        from .engine import resolve_trust_engine  # deferred: sibling cycle

        resolved = resolve_trust_engine(self.engine, size=len(graph))
        with get_tracer().span(
            "appleseed.compute",
            source=source,
            spreading_factor=self.spreading_factor,
            convergence_threshold=self.convergence_threshold,
            engine=resolved,
        ) as span:
            if resolved == "numpy":
                from .engine import appleseed_on_matrix, pack_graph

                result = appleseed_on_matrix(
                    pack_graph(graph), source, injection, self
                )
            else:
                result = self._compute_python(graph, source, injection)
            self._record(span, result)
        return result

    def _record(self, span: Span | NullSpan, result: AppleseedResult) -> None:
        """Convergence telemetry (§3.2: neighborhoods are *bounded and
        auditable*): the sweep count and residual-energy series mirror
        the result's own fields exactly, so a trace is evidence, not a
        parallel bookkeeping that can drift.  Shared by both engines —
        the vectorized path is held to the same evidence contract.
        """
        span.set("iterations", result.iterations)
        span.set("converged", result.converged)
        span.set("network_size", len(result.ranks))
        span.set("residual_energy", result.history)
        metrics = get_metrics()
        metrics.counter("appleseed.computations").inc()
        metrics.counter("appleseed.sweeps").inc(result.iterations)
        if not result.converged:
            metrics.counter("appleseed.iteration_cap_hits").inc()
        metrics.histogram("trust.neighborhood_size").observe(len(result.ranks))

    def _compute_python(
        self,
        graph: TrustGraph,
        source: str,
        injection: float,
    ) -> AppleseedResult:
        """The dict spreading-activation loop — the oracle."""
        d = self.spreading_factor
        rank: dict[str, float] = {source: 0.0}
        incoming: dict[str, float] = {source: injection}
        history: list[float] = []
        # Quotas depend only on the (static) graph, so compute each
        # node's distribution once per call instead of once per sweep —
        # the computation runs for dozens of sweeps.
        quota_cache: dict[str, list[tuple[str, float]]] = {}

        iterations = 0
        converged = False
        while iterations < self.max_iterations:
            iterations += 1
            outgoing: dict[str, float] = {}
            max_delta = 0.0
            for node, energy in incoming.items():
                if energy <= 0.0:
                    continue
                kept = (1.0 - d) * energy
                if node != source:  # source rank is a backward-edge artifact
                    rank[node] = rank.get(node, 0.0) + kept
                    max_delta = max(max_delta, kept)
                quota = quota_cache.get(node)
                if quota is None:
                    quota = self._quota(graph, node, source)
                    quota_cache[node] = quota
                forwarded = d * energy
                for target, share in quota:
                    outgoing[target] = outgoing.get(target, 0.0) + forwarded * share
                    rank.setdefault(target, 0.0)
            incoming = outgoing
            history.append(max_delta)
            # Convergence requires TWO consecutive sub-threshold sweeps:
            # single sweeps can show a zero delta while energy is merely
            # parked at the source (whose rank is excluded) — e.g. the
            # very first sweep, or every other sweep in a star topology —
            # and would otherwise terminate the computation prematurely.
            if (
                iterations > 1
                and max_delta <= self.convergence_threshold
                and history[-2] <= self.convergence_threshold
            ):
                converged = True
                break
            if not incoming:  # energy fully dissipated (dead ends only)
                converged = True
                break

        ranks = {node: value for node, value in rank.items() if node != source}
        if self.distrust_mode == "one_step":
            ranks = self._apply_distrust(graph, source, ranks)
        return AppleseedResult(
            source=source,
            ranks=ranks,
            iterations=iterations,
            converged=converged,
            injected=injection,
            history=history,
        )

    # -- internals ---------------------------------------------------------------

    def _quota(
        self, graph: TrustGraph, node: str, source: str
    ) -> list[tuple[str, float]]:
        """Energy shares for *node*'s successors, backward edge included.

        The virtual backward edge (node -> source, weight 1) takes part in
        normalization like any real edge; it is added for every node
        except the source itself (whose real edges alone receive its
        outgoing energy — re-injecting at the source would be a no-op that
        only slows convergence).
        """
        edges = dict(graph.positive_successors(node))
        if node != source and self.backward_propagation:
            edges[source] = 1.0
        if not edges:
            # Dead end: with backward propagation disabled (or for an
            # isolated source) the energy simply vanishes here.
            return []
        if self.normalization == "nonlinear":
            weighted = {t: w * w for t, w in edges.items()}
        else:
            weighted = edges
        total = sum(weighted.values())
        if total <= 0.0:
            return []
        return [(target, w / total) for target, w in weighted.items()]

    def _apply_distrust(
        self, graph: TrustGraph, source: str, ranks: dict[str, float]
    ) -> dict[str, float]:
        """One round of non-transitive distrust discounting."""
        adjusted = dict(ranks)
        accusers: dict[str, float] = dict(ranks)
        accusers[source] = max(ranks.values(), default=0.0) or 1.0
        for accuser, accuser_rank in accusers.items():
            if accuser_rank <= 0.0:
                continue
            for target, weight in graph.successors(accuser).items():
                if weight >= 0.0 or target not in adjusted:
                    continue
                penalty = self.spreading_factor * (-weight) * accuser_rank
                adjusted[target] = max(0.0, adjusted[target] - penalty)
        return adjusted
