"""The web of trust: a sparse directed graph of signed trust statements.

Every agent ``a_i`` contributes a partial trust function ``t_i`` (§3.1);
collectively these form a directed, weighted graph with weights in
``[-1, +1]``.  Positive weights denote trust, negative explicit distrust,
values near zero weak trust.  The graph is the substrate both group trust
metrics (Appleseed, Advogato) operate on.

Because the Semantic Web scenario forbids global knowledge, the class also
supports *partial exploration*: :meth:`within_horizon` materializes only
the ball of a bounded radius around a source agent, which is exactly how
Appleseed "operates on partial trust graph information, exploring the
social network within predefined ranges only" (§3.2).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator, Mapping
from typing import TYPE_CHECKING, Optional

from ..core.models import validate_score
from ..util.sync import GuardedCache, ReentrantGuard

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.models import Dataset

__all__ = ["TrustGraph"]


class TrustGraph:
    """Directed graph of trust statements with O(1) neighbor access.

    Edges carry a single weight; re-adding an edge overwrites (a newer
    published trust statement supersedes the old one).  Nodes exist as
    soon as they appear on either end of an edge or are added explicitly,
    so agents that state no trust and receive none can still be queried.
    """

    def __init__(self) -> None:
        self._guard = ReentrantGuard("trust-graph")
        self._succ: dict[str, dict[str, float]] = {}
        self._pred: dict[str, dict[str, float]] = {}
        # Positive-only successor views, built on demand and memoized.
        # The group trust metrics call :meth:`positive_successors` inside
        # their innermost loops (once per node per Appleseed quota, once
        # per node per BFS level), and filtering the full adjacency dict
        # there allocated a fresh dict per call — the single hottest
        # allocation in the python engine.  The GuardedCache makes the
        # memoized fill atomic for the query daemon's concurrent readers;
        # edge mutations invalidate the touched node under the same guard.
        self._pos_succ: GuardedCache[str, dict[str, float]] = GuardedCache(
            "positive-successors", guard=self._guard
        )

    # -- construction -----------------------------------------------------

    def add_node(self, node: str) -> None:
        """Ensure *node* exists (idempotent)."""
        if not node:
            raise ValueError("node identifier must be non-empty")
        with self._guard:
            self._succ.setdefault(node, {})
            self._pred.setdefault(node, {})
            self._pos_succ.invalidate(node)

    def add_edge(self, source: str, target: str, weight: float) -> None:
        """State ``t_source(target) = weight``; overwrites a prior statement."""
        if source == target:
            raise ValueError("self-trust edges are not allowed")
        weight = validate_score(weight, "trust weight")
        with self._guard:
            self.add_node(source)
            self.add_node(target)
            self._succ[source][target] = weight
            self._pred[target][source] = weight
            self._pos_succ.invalidate(source)

    def remove_edge(self, source: str, target: str) -> None:
        """Retract a trust statement; missing edges raise :class:`KeyError`."""
        with self._guard:
            del self._succ[source][target]
            del self._pred[target][source]
            self._pos_succ.invalidate(source)

    @classmethod
    def from_dataset(cls, dataset: "Dataset") -> "TrustGraph":
        """Build the community trust graph from a :class:`Dataset`."""
        graph = cls()
        for agent in dataset.agents:
            graph.add_node(agent)
        for statement in dataset.iter_trust():
            graph.add_edge(statement.source, statement.target, statement.value)
        return graph

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[str, str, float]]) -> "TrustGraph":
        """Build a graph from ``(source, target, weight)`` tuples."""
        graph = cls()
        for source, target, weight in edges:
            graph.add_edge(source, target, weight)
        return graph

    # -- accessors -----------------------------------------------------------

    def __contains__(self, node: str) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def nodes(self) -> Iterator[str]:
        return iter(self._succ)

    def edge_count(self) -> int:
        return sum(len(targets) for targets in self._succ.values())

    def edges(self) -> Iterator[tuple[str, str, float]]:
        for source, targets in self._succ.items():
            for target, weight in targets.items():
                yield (source, target, weight)

    def weight(self, source: str, target: str) -> Optional[float]:
        """The stated trust weight, or ``None`` for ⊥ (no statement)."""
        return self._succ.get(source, {}).get(target)

    def successors(self, node: str) -> Mapping[str, float]:
        """All outgoing statements of *node* (read-only view semantics)."""
        return self._succ.get(node, {})

    def predecessors(self, node: str) -> Mapping[str, float]:
        """All incoming statements about *node*."""
        return self._pred.get(node, {})

    def positive_successors(self, node: str) -> dict[str, float]:
        """Outgoing statements with strictly positive weight.

        Group trust metrics propagate along trust, never along distrust;
        a negative statement must not lend its target any energy.  The
        returned mapping is a *cached view* memoized per node (edge
        mutations invalidate it) — callers must copy before modifying (as
        :class:`Appleseed` does when adding its virtual backward edge).
        """
        return self._pos_succ.get_or_build(node, self._positive_view)

    def _positive_view(self, node: str) -> dict[str, float]:
        return {
            target: weight
            for target, weight in self._succ.get(node, {}).items()
            if weight > 0.0
        }

    def out_degree(self, node: str) -> int:
        return len(self._succ.get(node, {}))

    def in_degree(self, node: str) -> int:
        return len(self._pred.get(node, {}))

    # -- partial exploration ----------------------------------------------------

    def within_horizon(self, source: str, max_depth: int) -> "TrustGraph":
        """The sub-graph reachable from *source* within *max_depth* hops.

        Only edges between discovered nodes are retained.  Traversal
        follows positive edges (distrust does not extend one's horizon)
        but negative edges *between* discovered nodes are kept so distrust
        post-processing still sees them.
        """
        if max_depth < 0:
            raise ValueError("max_depth must be non-negative")
        if source not in self._succ:
            raise KeyError(f"unknown source agent {source!r}")
        depth = {source: 0}
        queue: deque[str] = deque([source])
        while queue:
            node = queue.popleft()
            if depth[node] >= max_depth:
                continue
            for target in self.positive_successors(node):
                if target not in depth:
                    depth[target] = depth[node] + 1
                    queue.append(target)
        subgraph = TrustGraph()
        for node in depth:
            subgraph.add_node(node)
        for node in depth:
            for target, weight in self._succ[node].items():
                if target in depth:
                    subgraph.add_edge(node, target, weight)
        return subgraph

    def bfs_levels(self, source: str) -> dict[str, int]:
        """Shortest positive-path hop distance from *source* to each node.

        Used by Advogato's level-based capacity assignment.
        """
        if source not in self._succ:
            raise KeyError(f"unknown source agent {source!r}")
        levels = {source: 0}
        queue: deque[str] = deque([source])
        while queue:
            node = queue.popleft()
            for target in self.positive_successors(node):
                if target not in levels:
                    levels[target] = levels[node] + 1
                    queue.append(target)
        return levels

    def reachable_from(self, source: str) -> set[str]:
        """Nodes reachable from *source* along positive edges (incl. source)."""
        return set(self.bfs_levels(source))

    def __repr__(self) -> str:
        return f"TrustGraph(nodes={len(self)}, edges={self.edge_count()})"
