"""Dinic's maximum-flow algorithm on integer-capacity networks.

Substrate for the Advogato group trust metric (:mod:`repro.trust.advogato`),
which reduces trust certification to a max-flow problem.  Implemented from
scratch on adjacency lists with residual edges; Dinic's level-graph /
blocking-flow structure gives O(V²E) worst case, far more than enough for
community-scale trust graphs.
"""

from __future__ import annotations

from collections import deque

__all__ = ["FlowNetwork"]


class FlowNetwork:
    """A directed flow network over hashable node identifiers.

    Edges are stored as a flat arc list with residual twins at ``index ^ 1``
    (the classic pairing trick), so pushing flow on an arc automatically
    maintains its residual capacity.
    """

    #: Sentinel for effectively unbounded capacities (node-to-node arcs in
    #: Advogato's reduction are uncapacitated).
    INFINITY = 10**12

    def __init__(self) -> None:
        self._adjacency: dict[object, list[int]] = {}
        # Parallel arrays: arc i goes to _to[i] with residual capacity _cap[i].
        self._to: list[object] = []
        self._cap: list[int] = []

    def add_node(self, node: object) -> None:
        """Ensure *node* exists (idempotent)."""
        self._adjacency.setdefault(node, [])

    def add_edge(self, source: object, target: object, capacity: int) -> int:
        """Add an arc with the given *capacity*; returns its arc index.

        A residual arc with capacity 0 is created automatically.
        """
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.add_node(source)
        self.add_node(target)
        index = len(self._to)
        self._to.append(target)
        self._cap.append(int(capacity))
        self._adjacency[source].append(index)
        self._to.append(source)
        self._cap.append(0)
        self._adjacency[target].append(index + 1)
        return index

    def flow_on(self, arc_index: int) -> int:
        """Flow currently pushed through the arc returned by :meth:`add_edge`."""
        return self._cap[arc_index ^ 1]

    def max_flow(self, source: object, sink: object) -> int:
        """Compute the maximum flow from *source* to *sink* (Dinic)."""
        if source not in self._adjacency or sink not in self._adjacency:
            raise KeyError("source and sink must be nodes of the network")
        if source == sink:
            raise ValueError("source and sink must differ")
        total = 0
        while True:
            level = self._bfs_levels(source, sink)
            if sink not in level:
                return total
            iterators = {node: 0 for node in self._adjacency}
            while True:
                pushed = self._dfs_push(
                    source, sink, self.INFINITY, level, iterators
                )
                if pushed == 0:
                    break
                total += pushed

    # -- internals -----------------------------------------------------------

    def _bfs_levels(self, source: object, sink: object) -> dict[object, int]:
        level = {source: 0}
        queue: deque[object] = deque([source])
        while queue:
            node = queue.popleft()
            if node == sink:
                continue
            for arc in self._adjacency[node]:
                target = self._to[arc]
                if self._cap[arc] > 0 and target not in level:
                    level[target] = level[node] + 1
                    queue.append(target)
        return level

    def _dfs_push(
        self,
        node: object,
        sink: object,
        limit: int,
        level: dict[object, int],
        iterators: dict[object, int],
    ) -> int:
        if node == sink:
            return limit
        arcs = self._adjacency[node]
        while iterators[node] < len(arcs):
            arc = arcs[iterators[node]]
            target = self._to[arc]
            if self._cap[arc] > 0 and level.get(target) == level[node] + 1:
                pushed = self._dfs_push(
                    target,
                    sink,
                    min(limit, self._cap[arc]),
                    level,
                    iterators,
                )
                if pushed > 0:
                    self._cap[arc] -= pushed
                    self._cap[arc ^ 1] += pushed
                    return pushed
            iterators[node] += 1
        return 0
