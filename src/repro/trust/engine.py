"""Engine selection and sharded fan-out for the group trust metrics.

Mirror of :mod:`repro.perf.engine` one layer down: every group metric
(:class:`~repro.trust.appleseed.Appleseed`,
:class:`~repro.trust.advogato.Advogato`,
:class:`~repro.trust.pagerank.PersonalizedPageRank`) takes an ``engine``
switch —

* ``"python"`` — the dict implementations in this package.  Always
  available; the oracle the vectorized path is property-tested against.
* ``"numpy"``  — the packed CSR kernels of
  :mod:`repro.perf.trustmatrix`.  Raises when numpy is missing.
* ``"auto"``   — numpy when importable and the graph is big enough to
  amortize packing, else python.

Both engines agree within 1e-9 on continuous ranks and *exactly* on
discrete outputs (Advogato's accepted set, neighborhood membership at
threshold 0.0) — choosing an engine is a performance decision, never a
semantic one.  The metric classes default to ``"python"`` so direct
construction stays bit-identical to the published dict algorithms;
entry points (experiments, the CLI) opt into ``"auto"`` explicitly —
reprolint RL009 flags entry-point call sites that silently bypass the
choice.

:func:`rank_many` adds partition-by-source sharding: the packed matrix
is read-only and picklable, so multi-source sweeps fan contiguous
source chunks out to :class:`~repro.perf.parallel.ParallelExperimentRunner`
workers and merge in submission order — byte-identical for any worker
count.

All ``perf`` imports below are function-local: ``trust -> perf`` is a
*lazy-only* edge in the RL100 layering contract, keeping the trust
package importable (python engine intact) on numpy-less installs.
"""

from __future__ import annotations

from collections.abc import Sequence
from functools import partial
from typing import TYPE_CHECKING, Optional

from ..obs import get_metrics, get_tracer

from .appleseed import Appleseed, AppleseedResult
from .graph import TrustGraph
from .maxflow import FlowNetwork

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..perf.parallel import ParallelExperimentRunner
    from ..perf.trustmatrix import TrustMatrix
    from .advogato import Advogato, AdvogatoResult

__all__ = [
    "TRUST_AUTO_THRESHOLD",
    "numpy_trust_available",
    "pack_graph",
    "rank_many",
    "resolve_trust_engine",
]

#: Below this many nodes, ``engine="auto"`` stays on the python path:
#: packing a CSR per call costs more than dict loops over a toy graph.
TRUST_AUTO_THRESHOLD = 64

_ENGINES = ("auto", "numpy", "python")


def numpy_trust_available() -> bool:
    """Whether the numpy trust engine can run in this interpreter."""
    from ..perf.engine import numpy_available  # lazy: allowlisted trust->perf

    return numpy_available()


def resolve_trust_engine(engine: str = "auto", size: int | None = None) -> str:
    """Resolve an ``engine`` switch to ``"numpy"`` or ``"python"``.

    *size* is the node count of the graph about to be packed; pass
    ``None`` when a packed matrix already exists (e.g. inside
    :func:`rank_many`, which amortizes one pack over many sources).
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r} (expected one of {_ENGINES})")
    if engine == "numpy":
        if not numpy_trust_available():
            raise RuntimeError("engine='numpy' requested but numpy is not installed")
        resolved = "numpy"
    elif engine == "python" or not numpy_trust_available():
        resolved = "python"
    elif size is not None and size < TRUST_AUTO_THRESHOLD:
        resolved = "python"
    else:
        resolved = "numpy"
    get_metrics().counter(f"trust.engine.selected.{resolved}").inc()
    return resolved


def pack_graph(graph: TrustGraph) -> "TrustMatrix":
    """Pack *graph* into a :class:`~repro.perf.trustmatrix.TrustMatrix`.

    Emits a ``trustmatrix.pack`` span so pack cost is attributable in
    traces separately from the sweeps it amortizes over.
    """
    from ..perf.trustmatrix import TrustMatrix  # lazy: allowlisted trust->perf

    with get_tracer().span(
        "trustmatrix.pack", nodes=len(graph), edges=graph.edge_count()
    ) as span:
        matrix = TrustMatrix.from_graph(graph)
        span.set("positive_edges", matrix.nnz)
    get_metrics().counter("trust.matrix.packs").inc()
    return matrix


# -- numpy drivers (callers hold the spans) ---------------------------------


def appleseed_on_matrix(
    matrix: "TrustMatrix",
    source: str,
    injection: float,
    metric: Appleseed,
) -> AppleseedResult:
    """Run one numpy Appleseed computation over a packed matrix.

    The caller has already applied the exploration horizon (the matrix
    is packed from the — possibly horizon-restricted — graph) and holds
    the ``appleseed.compute`` span; this assembles the result exactly as
    the dict oracle shapes it, zero-rank frontier entries included.
    """
    from ..perf import trustmatrix as tm  # lazy: allowlisted trust->perf

    index = matrix.index[source]
    rank, member, iterations, converged, history = tm.appleseed_spread(
        matrix,
        index,
        injection,
        metric.spreading_factor,
        metric.convergence_threshold,
        metric.max_iterations,
        normalization=metric.normalization,
        backward_propagation=metric.backward_propagation,
    )
    if metric.distrust_mode == "one_step":
        rank = tm.distrust_discount(
            matrix, index, rank, member, metric.spreading_factor
        )
    values = rank.tolist()
    ranks = {
        matrix.ids[i]: values[i]
        for i in member.nonzero()[0].tolist()
        if i != index
    }
    return AppleseedResult(
        source=source,
        ranks=ranks,
        iterations=iterations,
        converged=converged,
        injected=injection,
        history=history,
    )


def advogato_on_matrix(
    matrix: "TrustMatrix", seed: str, metric: "Advogato"
) -> "AdvogatoResult":
    """Run one Advogato certification with vectorized levels/capacities.

    BFS discovery order and level capacities come from the CSR kernels;
    the flow network is then built in exactly the dict engine's
    iteration order, so Dinic routes the same units over the same arcs
    and the accepted set is *identical*, not merely close.
    """
    from ..perf import trustmatrix as tm  # lazy: allowlisted trust->perf
    from .advogato import AdvogatoResult

    index = matrix.index[seed]
    order, level = tm.bfs_order_levels(matrix, index)
    if metric.explicit_capacities is not None:
        sequence = [max(1, c) for c in metric.explicit_capacities]
        last = sequence[-1]
        while len(sequence) <= int(level[order].max(initial=0)):
            sequence.append(last)
    else:
        sequence = tm.level_capacities(
            matrix, order, level, metric.target_size, metric.MIN_DECAY
        )
    reached = order.tolist()
    capacities = {matrix.ids[i]: sequence[int(level[i])] for i in reached}

    network = FlowNetwork()
    supersink = ("advogato", "supersink")
    sink_arcs: dict[str, int] = {}
    for node, capacity in capacities.items():
        node_in = ("in", node)
        if capacity > 1:
            network.add_edge(node_in, ("out", node), capacity - 1)
        else:
            network.add_node(("out", node))
        sink_arcs[node] = network.add_edge(node_in, supersink, 1)
    in_horizon = level >= 0
    for i in reached:
        targets, _ = matrix.row(i)
        node_out = ("out", matrix.ids[i])
        for j in targets[in_horizon[targets]].tolist():
            network.add_edge(node_out, ("in", matrix.ids[j]), FlowNetwork.INFINITY)

    total_flow = network.max_flow(("in", seed), supersink)
    accepted = frozenset(
        node for node, arc in sink_arcs.items() if network.flow_on(arc) > 0
    )
    return AdvogatoResult(
        seed=seed,
        accepted=accepted,
        capacities=capacities,
        total_flow=total_flow,
    )


def pagerank_on_matrix(
    matrix: "TrustMatrix",
    source: str,
    alpha: float,
    tolerance: float,
    max_iterations: int,
) -> tuple[dict[str, float], int, bool]:
    """Run one personalized-PageRank power iteration over the CSR."""
    from ..perf import trustmatrix as tm  # lazy: allowlisted trust->perf

    index = matrix.index[source]
    rank, iterations, converged = tm.pagerank_power(
        matrix, index, alpha, tolerance, max_iterations
    )
    values = rank.tolist()
    ranks = {
        matrix.ids[i]: values[i]
        for i in rank.nonzero()[0].tolist()
        if i != index
    }
    return ranks, iterations, converged


# -- partition-by-source sharding -------------------------------------------


def _metric_settings(metric: Appleseed) -> dict[str, object]:
    """The constructor arguments reproducing *metric* in a worker."""
    return {
        "spreading_factor": metric.spreading_factor,
        "convergence_threshold": metric.convergence_threshold,
        "max_iterations": metric.max_iterations,
        "normalization": metric.normalization,
        "max_depth": metric.max_depth,
        "distrust_mode": metric.distrust_mode,
        "backward_propagation": metric.backward_propagation,
    }


def _rank_chunk(
    state: tuple[str, object, dict[str, object], float],
    chunk: list[str],
) -> list[AppleseedResult]:
    """Worker: rank one contiguous source chunk over the shared payload.

    Module-level and payload-picklable, as
    :class:`~repro.perf.parallel.ParallelExperimentRunner` requires.
    Workers run with the null tracer, so per-source spans cost nothing
    off the parent process.
    """
    kind, payload, settings, injection = state
    metric = Appleseed(**settings)  # type: ignore[arg-type]
    if kind == "matrix":
        matrix: "TrustMatrix" = payload  # type: ignore[assignment]
        results = []
        for source in chunk:
            # Same span + metrics contract as Appleseed.compute, so a
            # sharded sweep leaves the same evidence a source-by-source
            # loop would (null tracer — hence free — inside workers).
            with get_tracer().span(
                "appleseed.compute",
                source=source,
                spreading_factor=metric.spreading_factor,
                convergence_threshold=metric.convergence_threshold,
                engine="numpy",
            ) as span:
                result = appleseed_on_matrix(matrix, source, injection, metric)
                metric._record(span, result)
            results.append(result)
        return results
    graph: TrustGraph = payload  # type: ignore[assignment]
    return [metric.compute(graph, source, injection) for source in chunk]


def rank_many(
    graph: TrustGraph,
    sources: Sequence[str],
    *,
    metric: Appleseed | None = None,
    injection: float = 200.0,
    engine: str = "auto",
    runner: Optional["ParallelExperimentRunner"] = None,
) -> list[AppleseedResult]:
    """Appleseed ranks for many sources over one shared packed matrix.

    Partition-by-source sharding: the source list is split into
    contiguous chunks (:func:`~repro.perf.parallel.split_evenly`), each
    worker ranks its chunk against the same read-only payload, and
    results merge in submission order — the output is byte-identical
    for any worker count, including the serial in-process path used
    when *runner* is ``None``.

    With the numpy engine (and no exploration horizon) the payload is
    the packed :class:`~repro.perf.trustmatrix.TrustMatrix`; with the
    python engine — or a ``max_depth`` horizon, which needs per-source
    subgraphs — it is the graph itself and each worker runs the oracle.
    """
    metric = metric or Appleseed()
    work = list(sources)
    for source in work:
        if source not in graph:
            raise KeyError(f"unknown source agent {source!r}")
    resolved = resolve_trust_engine(engine, size=len(graph))
    metrics = get_metrics()
    with get_tracer().span(
        "trust.rank_many",
        sources=len(work),
        engine=resolved,
        nodes=len(graph),
    ) as span:
        if resolved == "numpy" and metric.max_depth is None:
            state: tuple[str, object, dict[str, object], float] = (
                "matrix",
                pack_graph(graph),
                _metric_settings(metric),
                injection,
            )
        else:
            settings = _metric_settings(metric)
            settings["engine"] = resolved
            state = ("graph", graph, settings, injection)
        if runner is None:
            results = _rank_chunk(state, work)
        else:
            from ..perf.parallel import split_evenly  # lazy trust->perf

            chunks = split_evenly(work, runner.effective_workers())
            results = [
                result
                for chunk_results in runner.map(partial(_rank_chunk, state), chunks)
                for result in chunk_results
            ]
        span.set("iterations", sum(result.iterations for result in results))
    metrics.counter("trust.rank_many.calls").inc()
    metrics.histogram("trust.rank_many.sources").observe(len(work))
    return results
