"""The Advogato group trust metric (Levien & Aiken) — boolean comparator.

The paper names Advogato "the most important and most well-known local
group trust metric" but adopts Appleseed instead because Advogato "can
only make boolean decisions with respect to trustworthiness" (§3.2).  We
reimplement it faithfully as the comparison baseline for the
attack-resistance experiment (EX4).

Algorithm (following the USENIX '98 paper):

1. Compute BFS hop levels from the seed along positive trust edges.
2. Assign each node a *capacity* by level: the seed receives the target
   group size ``N``; each subsequent level's capacity shrinks by the mean
   out-degree of the previous level (at least :attr:`Advogato.MIN_DECAY`),
   never below 1.
3. Transform the node-capacitated graph into an edge-capacitated flow
   network by node splitting: ``x`` becomes ``x⁻ → x⁺`` with capacity
   ``cap(x) - 1``, plus a unit edge ``x⁻ → supersink``.  Trust edges
   ``x → y`` become uncapacitated arcs ``x⁺ → y⁻``.
4. Compute a maximum integer flow from the seed to the supersink.  A node
   is *accepted* (certified) exactly when its unit edge to the supersink
   carries flow.

The unit supersink edges force every accepted node to consume one unit of
flow, so the number of accepted nodes is bounded by the seed capacity no
matter how many edges attackers add among themselves — the property that
makes the metric attack-resistant: bad nodes can only be reached through
the *cut* of edges from good nodes to bad ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs import get_metrics, get_tracer

from .graph import TrustGraph
from .maxflow import FlowNetwork

__all__ = ["Advogato", "AdvogatoResult"]


@dataclass(frozen=True, slots=True)
class AdvogatoResult:
    """Outcome of one Advogato certification run.

    ``accepted`` always contains the seed.  ``capacities`` records the
    level-derived node capacities actually used, keyed by node.
    """

    seed: str
    accepted: frozenset[str]
    capacities: dict[str, int]
    total_flow: int

    def accepts(self, node: str) -> bool:
        """Whether *node* was certified."""
        return node in self.accepted


class Advogato:
    """Configured Advogato metric; call :meth:`compute` per seed agent.

    Parameters
    ----------
    target_size:
        ``N`` — the desired order of magnitude of the accepted group;
        becomes the seed's capacity.
    capacities:
        Optional explicit per-level capacity sequence overriding the
        decay heuristic (index 0 = seed level).  Values are clamped to a
        minimum of 1 and the sequence's last value extends to deeper
        levels.
    engine:
        ``"python"`` (default) computes BFS levels and capacities with
        dict loops; ``"numpy"``/``"auto"`` vectorize them over a packed
        :class:`~repro.perf.trustmatrix.TrustMatrix` while building the
        max-flow network in the identical order, so the accepted set is
        the same frozenset, not an approximation.
    """

    #: Capacity decay per level is at least this factor even in sparse graphs.
    MIN_DECAY = 2.0

    def __init__(
        self,
        target_size: int = 200,
        capacities: list[int] | None = None,
        engine: str = "python",
    ) -> None:
        if target_size < 1:
            raise ValueError("target_size must be at least 1")
        if capacities is not None and not capacities:
            raise ValueError("explicit capacities must be non-empty")
        if engine not in ("auto", "numpy", "python"):
            raise ValueError(f"unknown engine {engine!r}")
        self.target_size = target_size
        self.explicit_capacities = list(capacities) if capacities else None
        self.engine = engine

    def compute(self, graph: TrustGraph, seed: str) -> AdvogatoResult:
        """Certify the trust neighborhood of *seed* over *graph*."""
        if seed not in graph:
            raise KeyError(f"unknown seed agent {seed!r}")
        from .engine import resolve_trust_engine  # deferred: sibling cycle

        resolved = resolve_trust_engine(self.engine, size=len(graph))
        with get_tracer().span(
            "advogato.compute",
            seed=seed,
            target_size=self.target_size,
            engine=resolved,
        ) as span:
            if resolved == "numpy":
                from .engine import advogato_on_matrix, pack_graph

                result = advogato_on_matrix(pack_graph(graph), seed, self)
            else:
                result = self._compute_traced(graph, seed)
        span.set("accepted", len(result.accepted))
        span.set("total_flow", result.total_flow)
        span.set("network_size", len(result.capacities))
        metrics = get_metrics()
        metrics.counter("advogato.computations").inc()
        metrics.counter("advogato.accepted").inc(len(result.accepted))
        metrics.counter("advogato.flow").inc(result.total_flow)
        return result

    def _compute_traced(self, graph: TrustGraph, seed: str) -> AdvogatoResult:
        """The node-splitting max-flow certification itself."""
        levels = graph.bfs_levels(seed)
        level_capacity = self._level_capacities(graph, levels)
        capacities = {node: level_capacity[level] for node, level in levels.items()}

        network = FlowNetwork()
        supersink = ("advogato", "supersink")
        sink_arcs: dict[str, int] = {}
        for node, capacity in capacities.items():
            node_in = ("in", node)
            node_out = ("out", node)
            if capacity > 1:
                network.add_edge(node_in, node_out, capacity - 1)
            else:
                network.add_node(node_out)
            sink_arcs[node] = network.add_edge(node_in, supersink, 1)
        for node in levels:
            for target in graph.positive_successors(node):
                if target in levels:
                    network.add_edge(
                        ("out", node), ("in", target), FlowNetwork.INFINITY
                    )

        # Flow enters at the seed's *inner* node so the seed itself also
        # consumes its certification unit.
        total_flow = network.max_flow(("in", seed), supersink)
        accepted = frozenset(
            node
            for node, arc in sink_arcs.items()
            if network.flow_on(arc) > 0
        )
        return AdvogatoResult(
            seed=seed,
            accepted=accepted,
            capacities=capacities,
            total_flow=total_flow,
        )

    # -- internals ------------------------------------------------------------

    def _level_capacities(
        self, graph: TrustGraph, levels: dict[str, int]
    ) -> list[int]:
        """Capacity per BFS level, decaying by observed branching factor."""
        max_level = max(levels.values(), default=0)
        if self.explicit_capacities is not None:
            sequence = [max(1, c) for c in self.explicit_capacities]
            last = sequence[-1]
            while len(sequence) <= max_level:
                sequence.append(last)
            return sequence

        by_level: dict[int, list[str]] = {}
        for node, level in levels.items():
            by_level.setdefault(level, []).append(node)

        sequence = [self.target_size]
        for level in range(max_level):
            members = by_level.get(level, [])
            degrees = [
                len(graph.positive_successors(node)) for node in members
            ]
            outgoing = [d for d in degrees if d > 0]
            branching = (
                sum(outgoing) / len(outgoing) if outgoing else self.MIN_DECAY
            )
            decay = max(self.MIN_DECAY, branching)
            sequence.append(max(1, int(sequence[-1] / decay)))
        return sequence
