"""Personalized PageRank over the web of trust — the closest relative.

Appleseed's spreading-activation model is frequently compared to
personalized PageRank (both are eigenvector-style walk models; Appleseed
cites the same lineage through spreading activation [13]).  This module
provides PPR as an additional group-metric comparator so experiments can
separate what Appleseed's specific choices (backward edges, energy
accounting, convergence on rank deltas) contribute beyond a generic
teleporting random walk.

Power iteration with teleport vector concentrated on the source agent:

    rank ← (1 - alpha) · e_source + alpha · Wᵀ rank

where ``W`` row-normalizes positive trust weights and dangling mass is
redirected to the source (the standard personalized correction, which
mirrors Appleseed's backward edges).
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import TrustGraph

__all__ = ["PersonalizedPageRank", "PageRankResult"]


@dataclass(frozen=True, slots=True)
class PageRankResult:
    """Outcome of one personalized PageRank computation."""

    source: str
    ranks: dict[str, float]
    iterations: int
    converged: bool

    def top(self, limit: int | None = None) -> list[tuple[str, float]]:
        """Ranked agents, highest first, ties broken by identifier."""
        ordered = sorted(self.ranks.items(), key=lambda kv: (-kv[1], kv[0]))
        return ordered if limit is None else ordered[:limit]


class PersonalizedPageRank:
    """Configured PPR metric; call :meth:`compute` per source agent.

    Parameters
    ----------
    alpha:
        Walk-continuation probability (teleport probability is
        ``1 - alpha``); 0.85 matches both the PageRank literature and
        Appleseed's default spreading factor, making comparisons direct.
    tolerance:
        L1 convergence threshold on the rank vector.
    max_iterations:
        Safety cap; hitting it sets ``converged=False``.
    engine:
        ``"python"`` (default) iterates adjacency lists; ``"numpy"``/
        ``"auto"`` run the power iteration as scatter-adds over a packed
        :class:`~repro.perf.trustmatrix.TrustMatrix` (agreement within
        1e-9, see :mod:`repro.trust.engine`).
    """

    def __init__(
        self,
        alpha: float = 0.85,
        tolerance: float = 1e-8,
        max_iterations: int = 500,
        engine: str = "python",
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must lie strictly in (0, 1)")
        if tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if engine not in ("auto", "numpy", "python"):
            raise ValueError(f"unknown engine {engine!r}")
        self.alpha = alpha
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.engine = engine

    def compute(self, graph: TrustGraph, source: str) -> PageRankResult:
        """Run personalized PageRank from *source* over positive edges.

        Only the component reachable from *source* participates (other
        nodes provably hold rank 0 under a source-concentrated teleport).
        The source's own rank is excluded from the result, matching
        :class:`~repro.trust.appleseed.AppleseedResult` semantics.
        """
        if source not in graph:
            raise KeyError(f"unknown source agent {source!r}")
        from .engine import resolve_trust_engine  # deferred: sibling cycle

        if resolve_trust_engine(self.engine, size=len(graph)) == "numpy":
            from .engine import pack_graph, pagerank_on_matrix

            ranks, iterations, converged = pagerank_on_matrix(
                pack_graph(graph),
                source,
                self.alpha,
                self.tolerance,
                self.max_iterations,
            )
            return PageRankResult(
                source=source,
                ranks=ranks,
                iterations=iterations,
                converged=converged,
            )
        nodes = sorted(graph.reachable_from(source))
        index = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)
        # Row-normalized positive out-edges, restricted to the component.
        out_edges: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        for node in nodes:
            successors = {
                target: weight
                for target, weight in graph.positive_successors(node).items()
                if target in index
            }
            total = sum(successors.values())
            if total > 0:
                out_edges[index[node]] = [
                    (index[target], weight / total)
                    for target, weight in successors.items()
                ]

        source_index = index[source]
        rank = [0.0] * n
        rank[source_index] = 1.0
        iterations = 0
        converged = False
        while iterations < self.max_iterations:
            iterations += 1
            fresh = [0.0] * n
            dangling = 0.0
            for i, mass in enumerate(rank):
                if mass == 0.0:
                    continue
                edges = out_edges[i]
                if not edges:
                    dangling += mass
                    continue
                for j, probability in edges:
                    fresh[j] += self.alpha * mass * probability
            # Teleport + dangling mass both return to the source.
            fresh[source_index] += (1.0 - self.alpha) + self.alpha * dangling
            delta = sum(abs(a - b) for a, b in zip(fresh, rank))
            rank = fresh
            if delta <= self.tolerance:
                converged = True
                break

        ranks = {
            node: rank[index[node]]
            for node in nodes
            if node != source and rank[index[node]] > 0.0
        }
        return PageRankResult(
            source=source, ranks=ranks, iterations=iterations, converged=converged
        )
