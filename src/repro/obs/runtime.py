"""Process-wide tracer and metrics bindings.

Instrumented code asks :func:`get_tracer` / :func:`get_metrics` for the
current sinks instead of threading them through every signature — the
hot paths (similarity kernels, fetch loops, Appleseed sweeps) sit many
layers below the CLI that decides whether a run is observed.

Defaults: tracing is *off* (:data:`~repro.obs.trace.NULL_TRACER`, whose
spans are shared no-ops), metrics are *on* (a registry of plain
counters costs a dict lookup and an add — cheap enough to always keep
honest totals).  The CLI scopes both with the :func:`tracing` /
:func:`collecting` context managers, which also guarantee restoration
on error.

Pool workers deliberately see the defaults, not the parent's bindings:
a forked/spawned worker must not append into the parent's span list.
The parallel runner instead records fan-out shape from the parent side
(see :mod:`repro.perf.parallel`).
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager

from .metrics import MetricsRegistry
from .trace import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "collecting",
    "get_metrics",
    "get_tracer",
    "set_metrics",
    "set_tracer",
    "tracing",
]

_tracer: Tracer | NullTracer = NULL_TRACER
_metrics: MetricsRegistry = MetricsRegistry()


def get_tracer() -> Tracer | NullTracer:
    """The tracer instrumented code should open spans on right now."""
    return _tracer


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Bind *tracer* process-wide; returns the previous binding."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def get_metrics() -> MetricsRegistry:
    """The registry instrumented code should record into right now."""
    return _metrics


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Bind *registry* process-wide; returns the previous binding."""
    global _metrics
    previous = _metrics
    _metrics = registry
    return previous


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Bind a (fresh, by default) tracer for the duration of the block."""
    active = tracer if tracer is not None else Tracer()
    previous = set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)


@contextmanager
def collecting(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Bind a (fresh, by default) metrics registry for the block.

    Scopes a command's metrics away from whatever the process recorded
    before, so ``repro … --metrics`` summarizes exactly one run.
    """
    active = registry if registry is not None else MetricsRegistry()
    previous = set_metrics(active)
    try:
        yield active
    finally:
        set_metrics(previous)
