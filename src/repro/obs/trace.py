"""Structured tracing: nested, reproducible span trees.

A :class:`Span` is one timed operation with a name, a parent, and a dict
of attributes; a :class:`Tracer` collects the spans of one run into a
tree.  Two properties make traces usable as *evidence* rather than mere
logs:

* **Reproducible identity.**  Span ids are assigned sequentially in
  start order and parents come from an explicit span stack, so two runs
  of the same seeded computation produce byte-identical traces — except
  for the ``duration_ms`` field, the only place wall time may appear.
  Nothing clock-derived (timestamps, PIDs, object ids) enters a span's
  identity or attributes.
* **Zero-cost opt-out.**  :class:`NullTracer` hands out one shared
  :class:`NullSpan` whose every operation is a no-op, so instrumented
  hot paths pay a single method call when tracing is disabled.

Durations are measured with :func:`time.perf_counter` (monotonic);
``time.time`` is banned for durations throughout the reproduction
(reprolint ``RL007``).

The on-disk format is JSONL: one span object per line, in start order::

    {"attrs": {...}, "duration_ms": 0.173, "id": 2, "name": "appleseed.compute", "parent": 1}

:func:`validate_trace` checks that shape (the "span schema") and is what
``repro trace summarize`` and the CI smoke job run before trusting a
file.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from pathlib import Path
from types import TracebackType
from typing import Any

__all__ = [
    "MEMORY_ATTR",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "SPAN_FIELDS",
    "Span",
    "Tracer",
    "load_trace",
    "strip_durations",
    "validate_trace",
    "write_records_jsonl",
]

#: The exact key set of one JSONL span record.
SPAN_FIELDS = ("attrs", "duration_ms", "id", "name", "parent")

#: Attribute key stamped on every span by a ``memory=True`` tracer —
#: like ``duration_ms`` it is measurement, not identity, so
#: :func:`strip_durations` removes it too.
MEMORY_ATTR = "mem_delta_kb"


def _jsonify(value: Any) -> Any:
    """Coerce an attribute value into a JSON-stable shape.

    Tuples and sets become sorted/ordered lists, mappings become plain
    dicts, and anything non-primitive falls back to ``str`` — attributes
    must never make a trace unserializable or nondeterministic.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonify(item) for item in value)
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    return str(value)


class Span:
    """One traced operation; use as a context manager.

    Attributes may be set while the span is open *or after it closed*
    (a common pattern: close the timed region, then annotate it with the
    report the region produced).  Only :meth:`__exit__` touches the
    clock, and only to compute ``duration_ms``.
    """

    __slots__ = (
        "attrs",
        "duration_ms",
        "name",
        "parent_id",
        "span_id",
        "_mem_start",
        "_started",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = 0  # assigned at __enter__
        self.parent_id: int | None = None
        self.duration_ms = 0.0
        self._mem_start = 0
        self._started = 0.0
        self._tracer = tracer

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute; values are coerced to JSON-stable shapes."""
        self.attrs[key] = _jsonify(value)

    def __enter__(self) -> "Span":
        self._tracer._start(self)
        self._started = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.duration_ms = (time.perf_counter() - self._started) * 1000.0
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._finish(self)

    def to_record(self) -> dict[str, Any]:
        """The JSONL record for this span."""
        return {
            "attrs": {key: _jsonify(value) for key, value in self.attrs.items()},
            "duration_ms": round(self.duration_ms, 4),
            "id": self.span_id,
            "name": self.name,
            "parent": self.parent_id,
        }


class Tracer:
    """Collects one run's spans into a reproducible tree.

    Not thread-safe by design: a tracer belongs to one run in one
    process.  Spans started in pool workers simply land in the worker's
    (usually null) tracer and are not merged.

    With ``memory=True`` (the CLI's ``--memory`` flag) the tracer starts
    :mod:`tracemalloc` if needed and stamps every finished span with a
    ``mem_delta_kb`` attribute — the traced-memory delta across the
    span.  Memory numbers are measurement, not identity: like
    ``duration_ms`` they are removed by :func:`strip_durations`, so the
    same-seed reproducibility contract is unchanged.
    """

    enabled = True

    def __init__(self, memory: bool = False) -> None:
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1
        self.memory = memory
        if memory and not tracemalloc.is_tracing():
            tracemalloc.start()

    def span(self, name: str, **attrs: Any) -> Span:
        """A new span; enter it with ``with`` to start the clock."""
        return Span(self, name, {key: _jsonify(value) for key, value in attrs.items()})

    # -- span lifecycle (called by Span) ------------------------------------

    def _start(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        span.parent_id = self._stack[-1].span_id if self._stack else None
        self._stack.append(span)
        self.spans.append(span)  # start order == id order
        if self.memory:
            span._mem_start = tracemalloc.get_traced_memory()[0]

    def _finish(self, span: Span) -> None:
        # Tolerate exits out of order (an exception unwound past inner
        # spans): pop everything above the finishing span.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        if self.memory:
            delta = tracemalloc.get_traced_memory()[0] - span._mem_start
            span.attrs[MEMORY_ATTR] = round(delta / 1024.0, 3)

    # -- export -------------------------------------------------------------

    def records(self) -> list[dict[str, Any]]:
        """All span records in start order."""
        return [span.to_record() for span in self.spans]

    def to_jsonl(self) -> str:
        """The JSONL document: one span per line, keys sorted."""
        return "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in self.records()
        )

    def write_jsonl(self, path: str | Path) -> int:
        """Write the trace to *path*; returns the number of spans."""
        Path(path).write_text(self.to_jsonl(), encoding="utf-8")
        return len(self.spans)


class NullSpan:
    """The do-nothing span; one shared instance serves every call site."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        pass


class NullTracer:
    """The disabled tracer: every ``span()`` is the shared no-op span.

    Instrumented code never branches on whether tracing is on; it always
    opens a span, and this class makes that nearly free.
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> NullSpan:
        return NULL_SPAN


#: Module-wide singletons: there is never a reason for a second one.
NULL_SPAN = NullSpan()
NULL_TRACER = NullTracer()


def write_records_jsonl(records: list[dict[str, Any]], path: str | Path) -> int:
    """Write span records to *path* in the canonical JSONL shape.

    The file-level counterpart of :meth:`Tracer.write_jsonl` for callers
    holding plain records (e.g. ``repro bench`` exporting the driver
    tracer's spans); returns the number of records written.
    """
    Path(path).write_text(
        "".join(json.dumps(record, sort_keys=True) + "\n" for record in records),
        encoding="utf-8",
    )
    return len(records)


def load_trace(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL trace file into span records.

    Raises :class:`ValueError` naming the offending line when a line is
    not valid JSON; schema problems are :func:`validate_trace`'s job.
    """
    records: list[dict[str, Any]] = []
    text = Path(path).read_text(encoding="utf-8")
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}:{number}: not valid JSON: {error}") from error
    return records


def validate_trace(
    records: list[dict[str, Any]], strict_durations: bool = False
) -> list[str]:
    """Check span records against the span schema; returns error strings.

    The schema: every record carries exactly :data:`SPAN_FIELDS`; ``id``
    is a positive integer unique within the trace and records appear in
    ascending id order; ``parent`` is ``None`` (a root) or the id of an
    *earlier* span; ``name`` is a non-empty string; ``attrs`` is an
    object; ``duration_ms`` is a non-negative number.

    *Every* finding is collected and returned — a corrupt trace reports
    all of its problems in one pass, not just the first.  With
    ``strict_durations`` the monotonic-clock invariant is also checked:
    a span's children cannot together outlast their parent (each child
    ran strictly inside the parent's window), so a parent whose
    children's summed ``duration_ms`` exceeds its own (beyond rounding
    slack) marks a non-monotonic, hand-edited, or merged trace.
    """
    errors: list[str] = []
    seen: set[int] = set()
    previous_id = 0
    durations: dict[int, float] = {}
    child_totals: dict[int, float] = {}
    child_counts: dict[int, int] = {}
    for index, record in enumerate(records, start=1):
        where = f"span {index}"
        if not isinstance(record, dict):
            errors.append(f"{where}: record is not an object")
            continue
        if tuple(sorted(record)) != SPAN_FIELDS:
            errors.append(
                f"{where}: keys {sorted(record)} != expected {list(SPAN_FIELDS)}"
            )
            continue
        span_id = record["id"]
        valid_id = (
            isinstance(span_id, int) and not isinstance(span_id, bool) and span_id >= 1
        )
        if not valid_id:
            errors.append(f"{where}: id {span_id!r} is not a positive integer")
        elif span_id in seen:
            errors.append(f"{where}: duplicate id {span_id}")
        elif span_id <= previous_id:
            errors.append(f"{where}: id {span_id} out of start order")
        parent = record["parent"]
        if parent is not None and (
            not isinstance(parent, int) or isinstance(parent, bool) or parent not in seen
        ):
            errors.append(f"{where}: parent {parent!r} is not an earlier span id")
        if not isinstance(record["name"], str) or not record["name"]:
            errors.append(f"{where}: name must be a non-empty string")
        if not isinstance(record["attrs"], dict):
            errors.append(f"{where}: attrs must be an object")
        duration = record["duration_ms"]
        valid_duration = (
            not isinstance(duration, bool)
            and isinstance(duration, (int, float))
            and duration >= 0
        )
        if not valid_duration:
            errors.append(f"{where}: duration_ms {duration!r} must be a non-negative number")
        if valid_id:
            seen.add(span_id)
            previous_id = max(previous_id, span_id)
            if valid_duration:
                durations[span_id] = float(duration)
                if isinstance(parent, int) and not isinstance(parent, bool):
                    child_totals[parent] = child_totals.get(parent, 0.0) + float(duration)
                    child_counts[parent] = child_counts.get(parent, 0) + 1
    if strict_durations:
        for parent_id, total in sorted(child_totals.items()):
            if parent_id not in durations:
                continue
            # duration_ms is rounded to 4 decimals on export; allow each
            # involved record half a unit in the last place of slack.
            slack = 0.0001 * (child_counts[parent_id] + 1)
            if total > durations[parent_id] + slack:
                errors.append(
                    f"span id {parent_id}: children's duration_ms sums to "
                    f"{total:.4f} > own {durations[parent_id]:.4f} "
                    "(non-monotonic durations)"
                )
    return errors


def strip_durations(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Span records minus measurement — the deterministic remainder.

    Removes ``duration_ms`` and, when present, the ``mem_delta_kb``
    attribute a ``memory=True`` tracer stamps (allocator behavior is no
    more reproducible than the clock).  Two runs of the same seeded
    computation must agree exactly on this projection (the property the
    telemetry tests pin).
    """
    stripped: list[dict[str, Any]] = []
    for record in records:
        projected = {key: value for key, value in record.items() if key != "duration_ms"}
        attrs = projected.get("attrs")
        if isinstance(attrs, dict) and MEMORY_ATTR in attrs:
            projected["attrs"] = {
                key: value for key, value in attrs.items() if key != MEMORY_ATTR
            }
        stripped.append(projected)
    return stripped
