"""Structured tracing: nested, reproducible span trees.

A :class:`Span` is one timed operation with a name, a parent, and a dict
of attributes; a :class:`Tracer` collects the spans of one run into a
tree.  Two properties make traces usable as *evidence* rather than mere
logs:

* **Reproducible identity.**  Span ids are assigned sequentially in
  start order and parents come from an explicit span stack, so two runs
  of the same seeded computation produce byte-identical traces — except
  for the ``duration_ms`` field, the only place wall time may appear.
  Nothing clock-derived (timestamps, PIDs, object ids) enters a span's
  identity or attributes.
* **Zero-cost opt-out.**  :class:`NullTracer` hands out one shared
  :class:`NullSpan` whose every operation is a no-op, so instrumented
  hot paths pay a single method call when tracing is disabled.

Durations are measured with :func:`time.perf_counter` (monotonic);
``time.time`` is banned for durations throughout the reproduction
(reprolint ``RL007``).

The on-disk format is JSONL: one span object per line, in start order::

    {"attrs": {...}, "duration_ms": 0.173, "id": 2, "name": "appleseed.compute", "parent": 1}

:func:`validate_trace` checks that shape (the "span schema") and is what
``repro trace summarize`` and the CI smoke job run before trusting a
file.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from types import TracebackType
from typing import Any

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "SPAN_FIELDS",
    "Span",
    "Tracer",
    "load_trace",
    "strip_durations",
    "validate_trace",
]

#: The exact key set of one JSONL span record.
SPAN_FIELDS = ("attrs", "duration_ms", "id", "name", "parent")


def _jsonify(value: Any) -> Any:
    """Coerce an attribute value into a JSON-stable shape.

    Tuples and sets become sorted/ordered lists, mappings become plain
    dicts, and anything non-primitive falls back to ``str`` — attributes
    must never make a trace unserializable or nondeterministic.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonify(item) for item in value)
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    return str(value)


class Span:
    """One traced operation; use as a context manager.

    Attributes may be set while the span is open *or after it closed*
    (a common pattern: close the timed region, then annotate it with the
    report the region produced).  Only :meth:`__exit__` touches the
    clock, and only to compute ``duration_ms``.
    """

    __slots__ = ("attrs", "duration_ms", "name", "parent_id", "span_id", "_started", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = 0  # assigned at __enter__
        self.parent_id: int | None = None
        self.duration_ms = 0.0
        self._started = 0.0
        self._tracer = tracer

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute; values are coerced to JSON-stable shapes."""
        self.attrs[key] = _jsonify(value)

    def __enter__(self) -> "Span":
        self._tracer._start(self)
        self._started = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.duration_ms = (time.perf_counter() - self._started) * 1000.0
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._finish(self)

    def to_record(self) -> dict[str, Any]:
        """The JSONL record for this span."""
        return {
            "attrs": {key: _jsonify(value) for key, value in self.attrs.items()},
            "duration_ms": round(self.duration_ms, 4),
            "id": self.span_id,
            "name": self.name,
            "parent": self.parent_id,
        }


class Tracer:
    """Collects one run's spans into a reproducible tree.

    Not thread-safe by design: a tracer belongs to one run in one
    process.  Spans started in pool workers simply land in the worker's
    (usually null) tracer and are not merged.
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1

    def span(self, name: str, **attrs: Any) -> Span:
        """A new span; enter it with ``with`` to start the clock."""
        return Span(self, name, {key: _jsonify(value) for key, value in attrs.items()})

    # -- span lifecycle (called by Span) ------------------------------------

    def _start(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        span.parent_id = self._stack[-1].span_id if self._stack else None
        self._stack.append(span)
        self.spans.append(span)  # start order == id order

    def _finish(self, span: Span) -> None:
        # Tolerate exits out of order (an exception unwound past inner
        # spans): pop everything above the finishing span.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()

    # -- export -------------------------------------------------------------

    def records(self) -> list[dict[str, Any]]:
        """All span records in start order."""
        return [span.to_record() for span in self.spans]

    def to_jsonl(self) -> str:
        """The JSONL document: one span per line, keys sorted."""
        return "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in self.records()
        )

    def write_jsonl(self, path: str | Path) -> int:
        """Write the trace to *path*; returns the number of spans."""
        Path(path).write_text(self.to_jsonl(), encoding="utf-8")
        return len(self.spans)


class NullSpan:
    """The do-nothing span; one shared instance serves every call site."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        pass


class NullTracer:
    """The disabled tracer: every ``span()`` is the shared no-op span.

    Instrumented code never branches on whether tracing is on; it always
    opens a span, and this class makes that nearly free.
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> NullSpan:
        return NULL_SPAN


#: Module-wide singletons: there is never a reason for a second one.
NULL_SPAN = NullSpan()
NULL_TRACER = NullTracer()


def load_trace(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL trace file into span records.

    Raises :class:`ValueError` naming the offending line when a line is
    not valid JSON; schema problems are :func:`validate_trace`'s job.
    """
    records: list[dict[str, Any]] = []
    text = Path(path).read_text(encoding="utf-8")
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}:{number}: not valid JSON: {error}") from error
    return records


def validate_trace(records: list[dict[str, Any]]) -> list[str]:
    """Check span records against the span schema; returns error strings.

    The schema: every record carries exactly :data:`SPAN_FIELDS`; ``id``
    is a positive integer unique within the trace and records appear in
    ascending id order; ``parent`` is ``None`` (a root) or the id of an
    *earlier* span; ``name`` is a non-empty string; ``attrs`` is an
    object; ``duration_ms`` is a non-negative number.
    """
    errors: list[str] = []
    seen: set[int] = set()
    previous_id = 0
    for index, record in enumerate(records, start=1):
        where = f"span {index}"
        if not isinstance(record, dict):
            errors.append(f"{where}: record is not an object")
            continue
        if tuple(sorted(record)) != SPAN_FIELDS:
            errors.append(
                f"{where}: keys {sorted(record)} != expected {list(SPAN_FIELDS)}"
            )
            continue
        span_id = record["id"]
        if not isinstance(span_id, int) or isinstance(span_id, bool) or span_id < 1:
            errors.append(f"{where}: id {span_id!r} is not a positive integer")
            continue
        if span_id in seen:
            errors.append(f"{where}: duplicate id {span_id}")
        if span_id <= previous_id:
            errors.append(f"{where}: id {span_id} out of start order")
        parent = record["parent"]
        if parent is not None and (
            not isinstance(parent, int) or isinstance(parent, bool) or parent not in seen
        ):
            errors.append(f"{where}: parent {parent!r} is not an earlier span id")
        if not isinstance(record["name"], str) or not record["name"]:
            errors.append(f"{where}: name must be a non-empty string")
        if not isinstance(record["attrs"], dict):
            errors.append(f"{where}: attrs must be an object")
        duration = record["duration_ms"]
        if isinstance(duration, bool) or not isinstance(duration, (int, float)) or duration < 0:
            errors.append(f"{where}: duration_ms {duration!r} must be a non-negative number")
        seen.add(span_id)
        previous_id = max(previous_id, span_id if isinstance(span_id, int) else previous_id)
    return errors


def strip_durations(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Span records minus ``duration_ms`` — the deterministic remainder.

    Two runs of the same seeded computation must agree exactly on this
    projection (the property the telemetry tests pin).
    """
    return [
        {key: value for key, value in record.items() if key != "duration_ms"}
        for record in records
    ]
