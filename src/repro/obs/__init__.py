"""repro.obs — structured tracing, metrics, and timing for the stack.

The observability layer the ROADMAP's production north-star needs:
Ziegler's §3.2 argument is that trust neighborhoods make decentralized
recommendation *bounded and auditable*, and this package is where the
bounds become visible — how many Appleseed sweeps a query took, which
sites tripped their breaker, what fraction of similarity calls the
matrix cache absorbed.

Three pieces, all dependency-free:

* :mod:`~repro.obs.trace` — :class:`Tracer` / :class:`Span` context
  managers producing nested, seeded-run-reproducible span trees
  (sequential ids, no wall clock in span identity, monotonic durations
  only) with a JSONL exporter and schema validator;
* :mod:`~repro.obs.metrics` — :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket histograms with Prometheus text exposition
  and a console summary;
* :mod:`~repro.obs.stopwatch` — :class:`Stopwatch` / :func:`measure`,
  the single monotonic-timing helper (``time.time`` for durations is
  banned by reprolint ``RL007``).

Layering: ``obs`` sits *below* ``core`` in the RL100 architecture
contract, so every package may import it.  Instrumented code calls
:func:`get_tracer` / :func:`get_metrics`; the default
:class:`NullTracer` makes disabled tracing near-free, and the CLI
rebinds both via :func:`tracing` / :func:`collecting` for ``--trace`` /
``--metrics`` runs.
"""

from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry
from .profile import (
    NameDelta,
    SpanNode,
    SpanProfile,
    TraceDiff,
    build_tree,
    critical_path,
    diff_traces,
    profile_trace,
    render_critical_path,
    render_diff,
    render_flame,
    render_top,
)
from .runtime import (
    collecting,
    get_metrics,
    get_tracer,
    set_metrics,
    set_tracer,
    tracing,
)
from .stopwatch import Stopwatch, TimingStats, measure
from .summary import summarize_trace
from .trace import (
    MEMORY_ATTR,
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    Tracer,
    load_trace,
    strip_durations,
    validate_trace,
    write_records_jsonl,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MEMORY_ATTR",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NameDelta",
    "NullSpan",
    "NullTracer",
    "Span",
    "SpanNode",
    "SpanProfile",
    "Stopwatch",
    "TimingStats",
    "TraceDiff",
    "Tracer",
    "build_tree",
    "collecting",
    "critical_path",
    "diff_traces",
    "get_metrics",
    "get_tracer",
    "load_trace",
    "measure",
    "profile_trace",
    "render_critical_path",
    "render_diff",
    "render_flame",
    "render_top",
    "set_metrics",
    "set_tracer",
    "strip_durations",
    "summarize_trace",
    "tracing",
    "validate_trace",
    "write_records_jsonl",
]
