"""Counters, gauges, and fixed-bucket histograms for the whole stack.

A :class:`MetricsRegistry` is a flat, named collection of three
instrument kinds — deliberately the minimal subset of the Prometheus
model that the reproduction needs:

* :class:`Counter` — monotonically increasing totals (sweeps run,
  cache hits, breaker trips);
* :class:`Gauge` — last-written values (workers in use, community
  size);
* :class:`Histogram` — fixed cumulative buckets plus sum and count
  (neighborhood sizes, per-query latencies).  Buckets are fixed at
  creation so two runs aggregate identically.

Exporters: :meth:`MetricsRegistry.to_prometheus` renders the standard
text exposition format (``# TYPE`` lines, ``_bucket``/``_sum``/
``_count`` series), :meth:`MetricsRegistry.render_summary` a human
console table.  Metric *names* use dotted paths (``appleseed.sweeps``);
the Prometheus exporter mangles them to legal identifiers.

Everything here is deterministic: iteration is sorted by name, floats
render via ``repr``-stable formatting, and no wall-clock value is ever
recorded implicitly.
"""

from __future__ import annotations

import math

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram upper bounds: a coarse log scale that serves both
#: size-like (neighborhood members) and duration-like (milliseconds)
#: observations without per-metric tuning.
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed cumulative buckets plus running sum and count."""

    __slots__ = ("buckets", "counts", "name", "observations", "total")

    def __init__(self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError(f"histogram {name}: buckets must be strictly increasing")
        self.name = name
        self.buckets = tuple(float(bound) for bound in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # final slot: +Inf
        self.total = 0.0
        self.observations = 0

    def observe(self, value: float) -> None:
        """Record one observation into its (cumulative) bucket."""
        if math.isnan(value):
            raise ValueError(f"histogram {self.name}: NaN observation")
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.observations += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper bound, cumulative count)`` pairs, +Inf last."""
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            pairs.append((bound, running))
        pairs.append((math.inf, running + self.counts[-1]))
        return pairs

    @property
    def mean(self) -> float:
        return self.total / self.observations if self.observations else 0.0


def _prometheus_name(name: str) -> str:
    """A legal Prometheus identifier for a dotted metric name."""
    mangled = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if mangled and mangled[0].isdigit():
        mangled = "_" + mangled
    return mangled or "_"


def _format_value(value: float) -> str:
    """Integer-valued floats render as integers; others via repr."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """A named, flat collection of counters, gauges, and histograms.

    Instruments are created on first use (``registry.counter(name)``)
    and live for the registry's lifetime.  Asking for an existing name
    with a different instrument kind raises — one name, one kind.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access ---------------------------------------------------

    def _check_kind(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other, table in owners.items():
            if other != kind and name in table:
                raise ValueError(f"metric {name!r} already registered as a {other}")

    def counter(self, name: str) -> Counter:
        existing = self._counters.get(name)
        if existing is None:
            self._check_kind(name, "counter")
            existing = self._counters[name] = Counter(name)
        return existing

    def gauge(self, name: str) -> Gauge:
        existing = self._gauges.get(name)
        if existing is None:
            self._check_kind(name, "gauge")
            existing = self._gauges[name] = Gauge(name)
        return existing

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        existing = self._histograms.get(name)
        if existing is None:
            self._check_kind(name, "histogram")
            existing = self._histograms[name] = Histogram(name, buckets)
        return existing

    def reset(self) -> None:
        """Drop every instrument (a fresh registry without rebinding)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- export --------------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """A JSON-ready snapshot of every instrument, sorted by name."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "buckets": list(histogram.buckets),
                    "counts": list(histogram.counts),
                    "sum": histogram.total,
                    "count": histogram.observations,
                }
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def to_prometheus(self) -> str:
        """The text exposition format, instruments sorted by name."""
        lines: list[str] = []
        for name, counter in sorted(self._counters.items()):
            identifier = _prometheus_name(name)
            lines.append(f"# TYPE {identifier} counter")
            lines.append(f"{identifier} {_format_value(counter.value)}")
        for name, gauge in sorted(self._gauges.items()):
            identifier = _prometheus_name(name)
            lines.append(f"# TYPE {identifier} gauge")
            lines.append(f"{identifier} {_format_value(gauge.value)}")
        for name, histogram in sorted(self._histograms.items()):
            identifier = _prometheus_name(name)
            lines.append(f"# TYPE {identifier} histogram")
            for bound, cumulative in histogram.cumulative():
                label = "+Inf" if math.isinf(bound) else _format_value(bound)
                lines.append(
                    f'{identifier}_bucket{{le="{label}"}} {cumulative}'
                )
            lines.append(f"{identifier}_sum {_format_value(histogram.total)}")
            lines.append(f"{identifier}_count {histogram.observations}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render_summary(self) -> str:
        """A human console summary: one aligned section per kind."""
        sections: list[str] = []
        if self._counters:
            width = max(len(name) for name in self._counters)
            rows = [
                f"  {name.ljust(width)}  {_format_value(counter.value)}"
                for name, counter in sorted(self._counters.items())
            ]
            sections.append("counters:\n" + "\n".join(rows))
        if self._gauges:
            width = max(len(name) for name in self._gauges)
            rows = [
                f"  {name.ljust(width)}  {_format_value(gauge.value)}"
                for name, gauge in sorted(self._gauges.items())
            ]
            sections.append("gauges:\n" + "\n".join(rows))
        if self._histograms:
            width = max(len(name) for name in self._histograms)
            rows = [
                f"  {name.ljust(width)}  count={histogram.observations}"
                f" sum={_format_value(round(histogram.total, 4))}"
                f" mean={histogram.mean:.3f}"
                for name, histogram in sorted(self._histograms.items())
            ]
            sections.append("histograms:\n" + "\n".join(rows))
        if not sections:
            return "metrics: none recorded"
        return "\n".join(sections)
