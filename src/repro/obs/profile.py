"""Post-hoc profiling over JSONL span trees: attribution, not anecdotes.

:mod:`repro.obs.trace` records *what happened*; this module turns a
recorded span tree into *where the time went* — deterministically, from
the file alone, with no re-run.  Four views, all backing ``repro trace``
subcommands:

* **Per-name aggregation** (:func:`profile_trace`) — for every span
  name: call count, *cumulative* time (the span's own clock, children
  included) and *self* time (cumulative minus direct children — the
  part attributable to that code and no deeper span), with
  min/p50/max per-call self times via
  :class:`~repro.obs.stopwatch.TimingStats`.
* **Critical path** (:func:`critical_path`) — the root-to-leaf chain of
  slowest spans, the single sequence of operations that bounded the
  run's wall clock.
* **Tree diff** (:func:`diff_traces`) — given two traces of the same
  workload, the per-name self-time deltas sorted by magnitude (*which
  span regressed*), plus a structural-drift check on the
  duration-stripped projection (same-seed runs must agree exactly
  there; see :func:`~repro.obs.trace.strip_durations`).
* **Flame / top rendering** (:func:`render_flame`, :func:`render_top`)
  — ASCII views of the tree and the aggregation for terminals and CI
  artifacts.

When spans carry ``mem_delta_kb`` attributes (a :class:`~repro.obs.trace.Tracer`
constructed with ``memory=True``, the CLI's ``--memory`` flag), the
aggregation also sums per-name memory deltas.

All functions assume records that already passed
:func:`~repro.obs.trace.validate_trace`; the CLI validates before
profiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .stopwatch import TimingStats
from .summary import format_table
from .trace import MEMORY_ATTR, strip_durations

__all__ = [
    "NameDelta",
    "SpanNode",
    "SpanProfile",
    "TraceDiff",
    "aggregate_nodes",
    "build_tree",
    "critical_path",
    "diff_traces",
    "profile_trace",
    "render_critical_path",
    "render_diff",
    "render_flame",
    "render_top",
    "walk_tree",
]

@dataclass(slots=True)
class SpanNode:
    """One span record plus its resolved children, in start order."""

    record: dict[str, Any]
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def span_id(self) -> int:
        return int(self.record["id"])

    @property
    def name(self) -> str:
        return str(self.record["name"])

    @property
    def duration_ms(self) -> float:
        """Cumulative time: the span's own clock, children included."""
        return float(self.record["duration_ms"])

    @property
    def child_ms(self) -> float:
        return sum(child.duration_ms for child in self.children)

    @property
    def self_ms(self) -> float:
        """Time attributable to this span alone (children subtracted).

        Clamped at zero: rounding of the stored ``duration_ms`` values
        can push a fully-delegating span's children a hair past its own
        clock.
        """
        return max(0.0, self.duration_ms - self.child_ms)

    @property
    def mem_delta_kb(self) -> float | None:
        value = self.record["attrs"].get(MEMORY_ATTR)
        return float(value) if isinstance(value, (int, float)) else None


def build_tree(records: list[dict[str, Any]]) -> list[SpanNode]:
    """Resolve parent ids into a forest of :class:`SpanNode` roots.

    Records must be schema-valid (every parent an earlier id); an
    unknown parent raises :class:`ValueError` naming the span rather
    than silently re-rooting it.
    """
    by_id: dict[int, SpanNode] = {}
    roots: list[SpanNode] = []
    for record in records:
        node = SpanNode(record=record)
        by_id[node.span_id] = node
        parent = record["parent"]
        if parent is None:
            roots.append(node)
        else:
            if parent not in by_id:
                raise ValueError(
                    f"span {node.span_id} names unknown parent {parent}; "
                    "run validate_trace first"
                )
            by_id[parent].children.append(node)
    return roots


def walk_tree(roots: list[SpanNode]) -> list[SpanNode]:
    """Every node of the forest, depth-first in start order."""
    out: list[SpanNode] = []
    stack = list(reversed(roots))
    while stack:
        node = stack.pop()
        out.append(node)
        stack.extend(reversed(node.children))
    return out


@dataclass(frozen=True, slots=True)
class SpanProfile:
    """Aggregate of every span sharing one name."""

    name: str
    count: int
    self_ms: float
    cumulative_ms: float
    #: Per-call *self* times, in seconds (TimingStats' native unit).
    self_stats: TimingStats
    #: Summed ``mem_delta_kb`` across calls, or ``None`` when the trace
    #: carries no memory attribution.
    mem_delta_kb: float | None = None


def profile_trace(records: list[dict[str, Any]]) -> list[SpanProfile]:
    """Per-span-name aggregation, sorted by self time (descending).

    Self time is the one additive decomposition of the run: summed over
    all names it equals the total root time (modulo per-record
    rounding), so "who owns the wall clock" has exactly one answer.
    """
    return aggregate_nodes(walk_tree(build_tree(records)))


def aggregate_nodes(nodes: list[SpanNode]) -> list[SpanProfile]:
    """Per-name aggregation over already-resolved nodes (any subtree).

    :func:`profile_trace` feeds the whole forest through here; callers
    holding a subtree (e.g. one ``repro bench`` phase) aggregate just
    their slice.
    """
    buckets: dict[str, list[SpanNode]] = {}
    for node in nodes:
        buckets.setdefault(node.name, []).append(node)
    profiles: list[SpanProfile] = []
    for name, nodes in buckets.items():
        self_times = tuple(node.self_ms / 1000.0 for node in nodes)
        memory: float | None = None
        deltas = [node.mem_delta_kb for node in nodes if node.mem_delta_kb is not None]
        if deltas:
            memory = sum(deltas)
        profiles.append(
            SpanProfile(
                name=name,
                count=len(nodes),
                self_ms=sum(node.self_ms for node in nodes),
                cumulative_ms=sum(node.duration_ms for node in nodes),
                self_stats=TimingStats(times=self_times),
                mem_delta_kb=memory,
            )
        )
    profiles.sort(key=lambda profile: (-profile.self_ms, profile.name))
    return profiles


def critical_path(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """The slowest root-to-leaf chain: the spans that bounded the run.

    From the slowest root, repeatedly descend into the slowest child.
    Ties break toward the earlier span id, keeping the extraction
    deterministic for equal durations.
    """
    roots = build_tree(records)
    if not roots:
        return []
    path: list[dict[str, Any]] = []
    node = min(roots, key=lambda n: (-n.duration_ms, n.span_id))
    while True:
        path.append(node.record)
        if not node.children:
            return path
        node = min(node.children, key=lambda n: (-n.duration_ms, n.span_id))


@dataclass(frozen=True, slots=True)
class NameDelta:
    """Self-time movement of one span name between two traces."""

    name: str
    count_a: int
    count_b: int
    self_a_ms: float
    self_b_ms: float

    @property
    def delta_ms(self) -> float:
        return self.self_b_ms - self.self_a_ms

    @property
    def ratio(self) -> float | None:
        """``b / a``, or ``None`` when *a* spent no self time."""
        if self.self_a_ms <= 0.0:
            return None
        return self.self_b_ms / self.self_a_ms


@dataclass(frozen=True, slots=True)
class TraceDiff:
    """Structural drift plus per-name self-time deltas of two traces."""

    structural_drift: bool
    drift_details: tuple[str, ...]
    deltas: tuple[NameDelta, ...]


def diff_traces(
    a_records: list[dict[str, Any]], b_records: list[dict[str, Any]]
) -> TraceDiff:
    """Compare two traces: structure first, then self-time attribution.

    Structure is the duration-stripped projection two same-seed runs
    must agree on; any disagreement is *drift* and is reported through
    ``drift_details`` (span counts, per-name call-count changes, and
    the first diverging record).  Deltas are per-name self-time
    movements sorted by magnitude — the answer to "which span regressed"
    when a benchmark number moves.
    """
    details: list[str] = []
    stripped_a = strip_durations(a_records)
    stripped_b = strip_durations(b_records)
    drift = stripped_a != stripped_b
    if drift:
        if len(stripped_a) != len(stripped_b):
            details.append(f"span count {len(stripped_a)} -> {len(stripped_b)}")
        counts_a: dict[str, int] = {}
        counts_b: dict[str, int] = {}
        for record in a_records:
            counts_a[record["name"]] = counts_a.get(record["name"], 0) + 1
        for record in b_records:
            counts_b[record["name"]] = counts_b.get(record["name"], 0) + 1
        for name in sorted(set(counts_a) | set(counts_b)):
            if counts_a.get(name, 0) != counts_b.get(name, 0):
                details.append(
                    f"{name}: {counts_a.get(name, 0)} -> {counts_b.get(name, 0)} calls"
                )
        for index, (left, right) in enumerate(zip(stripped_a, stripped_b)):
            if left != right:
                details.append(
                    f"first divergence at record {index + 1}: "
                    f"{left['name']} (id {left['id']}) vs "
                    f"{right['name']} (id {right['id']})"
                )
                break

    profiles_a = {profile.name: profile for profile in profile_trace(a_records)}
    profiles_b = {profile.name: profile for profile in profile_trace(b_records)}
    deltas = [
        NameDelta(
            name=name,
            count_a=profiles_a[name].count if name in profiles_a else 0,
            count_b=profiles_b[name].count if name in profiles_b else 0,
            self_a_ms=profiles_a[name].self_ms if name in profiles_a else 0.0,
            self_b_ms=profiles_b[name].self_ms if name in profiles_b else 0.0,
        )
        for name in sorted(set(profiles_a) | set(profiles_b))
    ]
    deltas.sort(key=lambda delta: (-abs(delta.delta_ms), delta.name))
    return TraceDiff(
        structural_drift=drift, drift_details=tuple(details), deltas=tuple(deltas)
    )


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def render_top(records: list[dict[str, Any]], limit: int = 15) -> str:
    """The profiler table: hottest span names by self time.

    Ends with the critical path so a single artifact answers both
    "who owns the clock" and "what sequence bounded the run".
    """
    if not records:
        return "trace: empty (0 spans)"
    profiles = profile_trace(records)
    total_self = sum(profile.self_ms for profile in profiles)
    with_memory = any(profile.mem_delta_kb is not None for profile in profiles)
    headers = ["name", "count", "self ms", "%", "cum ms", "min", "p50", "max"]
    if with_memory:
        headers.append("mem kb")
    rows: list[list[str]] = []
    for profile in profiles[:limit]:
        share = 100.0 * profile.self_ms / total_self if total_self else 0.0
        row = [
            profile.name,
            str(profile.count),
            f"{profile.self_ms:.2f}",
            f"{share:.1f}",
            f"{profile.cumulative_ms:.2f}",
            f"{profile.self_stats.best_ms:.3f}",
            f"{profile.self_stats.median_ms:.3f}",
            f"{profile.self_stats.worst_ms:.3f}",
        ]
        if with_memory:
            row.append(
                f"{profile.mem_delta_kb:+.1f}" if profile.mem_delta_kb is not None else ""
            )
        rows.append(row)
    lines = [
        f"profile: {len(records)} spans, {len(profiles)} names, "
        f"{total_self:.1f} ms total self time",
        "",
        format_table(headers, rows),
        "",
        render_critical_path(records),
    ]
    return "\n".join(lines)


def render_critical_path(records: list[dict[str, Any]]) -> str:
    """The slowest chain, one span per line with cumulative/self split."""
    path = critical_path(records)
    if not path:
        return "critical path: (empty trace)"
    lines = ["critical path (slowest chain, root -> leaf):"]
    tree_index = {node.span_id: node for node in walk_tree(build_tree(records))}
    for depth, record in enumerate(path):
        node = tree_index[record["id"]]
        lines.append(
            f"  {'  ' * depth}{node.name}  "
            f"[id {node.span_id}]  {node.duration_ms:.2f} ms "
            f"(self {node.self_ms:.2f} ms)"
        )
    return "\n".join(lines)


def render_flame(records: list[dict[str, Any]], width: int = 60) -> str:
    """ASCII flame view: one line per span, bar width = share of root time.

    The bar is proportional to the span's cumulative time relative to
    the total root time, so a glance shows both depth (indentation) and
    weight (bar length).  Spans too cheap for a single bar cell render
    as ``.``.
    """
    if not records:
        return "trace: empty (0 spans)"
    roots = build_tree(records)
    total_ms = sum(root.duration_ms for root in roots) or 1.0
    lines = [f"flame: {len(records)} spans, {total_ms:.1f} ms total root time"]

    def emit(node: SpanNode, depth: int) -> None:
        share = node.duration_ms / total_ms
        cells = int(round(share * width))
        bar = "#" * cells if cells else "."
        lines.append(
            f"{'  ' * depth}{bar} {node.name} "
            f"{node.duration_ms:.2f} ms ({100.0 * share:.1f}%)"
        )
        for child in node.children:
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    return "\n".join(lines)


def render_diff(diff: TraceDiff, top: int = 10) -> str:
    """Human rendering of a :class:`TraceDiff` (``repro trace diff``)."""
    lines: list[str] = []
    if diff.structural_drift:
        lines.append("structural drift: YES (traces differ beyond durations)")
        lines.extend(f"  {detail}" for detail in diff.drift_details)
    else:
        lines.append("structural drift: none (identical modulo durations)")
    moved = [delta for delta in diff.deltas if delta.count_a or delta.count_b]
    lines += ["", f"top {min(top, len(moved))} self-time movements (B - A):"]
    rows: list[list[str]] = []
    for delta in moved[:top]:
        ratio = delta.ratio
        rows.append(
            [
                delta.name,
                f"{delta.count_a}->{delta.count_b}",
                f"{delta.self_a_ms:.2f}",
                f"{delta.self_b_ms:.2f}",
                f"{delta.delta_ms:+.2f}",
                f"{ratio:.2f}x" if ratio is not None else "new",
            ]
        )
    lines.append(
        format_table(["name", "calls", "A self ms", "B self ms", "delta", "ratio"], rows)
    )
    return "\n".join(lines)
