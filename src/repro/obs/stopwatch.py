"""Monotonic duration measurement — the one way the repo times things.

Every hand-rolled ``start = time.perf_counter(); …; elapsed = …`` pair
in the experiment and benchmark code converges here.  A
:class:`Stopwatch` accumulates monotonic elapsed time across one or
more start/stop windows (or ``with`` blocks) and can report while still
running; :func:`measure` wraps the classic repeat-and-take-the-median
protocol used by the perf tables.

``time.time`` is wall clock — it jumps under NTP steps and DST and must
never measure a duration (reprolint ``RL007`` enforces this).  This
module is the sanctioned alternative.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass
from types import TracebackType
from typing import Any, TypeVar

__all__ = ["Stopwatch", "TimingStats", "measure"]

Result = TypeVar("Result")


class Stopwatch:
    """Accumulating monotonic stopwatch.

    Usable as a context manager (each ``with`` block adds its window to
    the total) or via explicit :meth:`start` / :meth:`stop`.
    :attr:`elapsed` may be read while running — it includes the live
    window — which is what lets a report be built *inside* the timed
    region it describes.
    """

    __slots__ = ("_accumulated", "_started")

    def __init__(self) -> None:
        self._accumulated = 0.0
        self._started: float | None = None

    def start(self) -> "Stopwatch":
        if self._started is not None:
            raise RuntimeError("stopwatch is already running")
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        """Close the current window; returns total elapsed seconds."""
        if self._started is None:
            raise RuntimeError("stopwatch is not running")
        self._accumulated += time.perf_counter() - self._started
        self._started = None
        return self._accumulated

    def reset(self) -> None:
        self._accumulated = 0.0
        self._started = None

    @property
    def running(self) -> bool:
        return self._started is not None

    @property
    def elapsed(self) -> float:
        """Total elapsed seconds, including a still-open window."""
        live = 0.0
        if self._started is not None:
            live = time.perf_counter() - self._started
        return self._accumulated + live

    @property
    def elapsed_ms(self) -> float:
        """Total elapsed milliseconds, including a still-open window."""
        return self.elapsed * 1000.0

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.stop()

    @classmethod
    def time_call(
        cls, func: Callable[..., Result], *args: Any, **kwargs: Any
    ) -> tuple[Result, float]:
        """``(func(*args, **kwargs), elapsed seconds)`` in one call."""
        watch = cls()
        with watch:
            result = func(*args, **kwargs)
        return result, watch.elapsed


@dataclass(frozen=True, slots=True)
class TimingStats:
    """Per-repeat timings of one measured callable, in seconds."""

    times: tuple[float, ...]

    @property
    def best(self) -> float:
        return min(self.times)

    @property
    def worst(self) -> float:
        return max(self.times)

    @property
    def total(self) -> float:
        return sum(self.times)

    @property
    def median(self) -> float:
        ordered = sorted(self.times)
        middle = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[middle]
        return (ordered[middle - 1] + ordered[middle]) / 2.0

    @property
    def median_ms(self) -> float:
        return self.median * 1000.0

    @property
    def best_ms(self) -> float:
        return self.best * 1000.0

    @property
    def worst_ms(self) -> float:
        return self.worst * 1000.0


def measure(func: Callable[[], object], repeats: int = 1) -> TimingStats:
    """Run *func* *repeats* times and collect per-run monotonic timings.

    The shared repeat/median protocol: report ``.median`` (robust to a
    one-off scheduler hiccup) or ``.best`` (closest to the true cost)
    rather than a single noisy run.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    times: list[float] = []
    for _ in range(repeats):
        watch = Stopwatch()
        with watch:
            func()
        times.append(watch.elapsed)
    return TimingStats(times=tuple(times))
