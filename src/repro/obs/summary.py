"""Human rendering of a JSONL trace: slowest spans + per-name rollups.

Backs ``repro trace summarize FILE``.  Input records must already have
passed :func:`repro.obs.trace.validate_trace`; rendering assumes the
schema holds.

The two views answer the two questions a trace exists for:

* *where did the time go* — the top-N slowest spans, with their path
  from the root (``experiment.EX03 > ex03.config > appleseed.compute``)
  so a hot leaf is attributable without reading raw JSON;
* *what ran how often* — per-name aggregates (count, total, mean, max),
  the span-tree analogue of a metrics summary.
"""

from __future__ import annotations

from typing import Any

__all__ = ["format_table", "summarize_trace"]

#: Attributes surfaced inline for a slow span (kept short on purpose).
_HIGHLIGHT_ATTRS = ("source", "kind", "iterations", "converged", "fetched", "agents", "d")


def _span_path(
    record: dict[str, Any], by_id: dict[int, dict[str, Any]], limit: int = 4
) -> str:
    """``root > … > span`` name path, elided in the middle when deep."""
    names: list[str] = []
    cursor: dict[str, Any] | None = record
    while cursor is not None:
        names.append(cursor["name"])
        parent = cursor["parent"]
        cursor = by_id.get(parent) if parent is not None else None
    names.reverse()
    if len(names) > limit:
        names = names[:1] + ["…"] + names[-(limit - 2):]
    return " > ".join(names)


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Minimal aligned text table (obs sits below core; no Table import).

    Shared by this renderer and the :mod:`repro.obs.profile` views.
    """
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: list[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()
    rule = "  ".join("-" * width for width in widths)
    return "\n".join([line(headers), rule, *[line(row) for row in rows]])


def summarize_trace(records: list[dict[str, Any]], top: int = 10) -> str:
    """Render the console summary of validated span *records*."""
    if not records:
        return "trace: empty (0 spans)"
    by_id = {record["id"]: record for record in records}
    roots = sum(1 for record in records if record["parent"] is None)
    total_ms = sum(
        record["duration_ms"] for record in records if record["parent"] is None
    )
    lines = [
        f"trace: {len(records)} spans, {roots} roots, "
        f"{total_ms:.1f} ms total root time",
        "",
        f"top {min(top, len(records))} slowest spans:",
    ]

    slowest = sorted(
        records, key=lambda record: (-record["duration_ms"], record["id"])
    )[:top]
    rows = []
    for record in slowest:
        attrs = record["attrs"]
        highlights = ", ".join(
            f"{key}={attrs[key]}" for key in _HIGHLIGHT_ATTRS if key in attrs
        )
        rows.append(
            [
                f"{record['duration_ms']:.2f}",
                str(record["id"]),
                _span_path(record, by_id),
                highlights,
            ]
        )
    lines.append(format_table(["ms", "id", "span", "attrs"], rows))

    aggregates: dict[str, list[float]] = {}
    for record in records:
        entry = aggregates.setdefault(record["name"], [0.0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += record["duration_ms"]
        entry[2] = max(entry[2], record["duration_ms"])
    lines += ["", "by span name:"]
    name_rows = [
        [
            name,
            f"{int(count)}",
            f"{total:.2f}",
            f"{total / count:.3f}",
            f"{peak:.2f}",
        ]
        for name, (count, total, peak) in sorted(aggregates.items())
    ]
    lines.append(
        format_table(["name", "count", "total ms", "mean ms", "max ms"], name_rows)
    )
    return "\n".join(lines)
