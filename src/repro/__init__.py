"""repro — reproduction of *Semantic Web Recommender Systems* (EDBT 2004).

A decentralized, trust-aware, taxonomy-driven recommender framework:

* :mod:`repro.core` — the paper's contribution: taxonomy profiles (Eq. 3),
  similarity filtering, trust neighborhoods, rank synthesis, recommenders.
* :mod:`repro.trust` — Appleseed and Advogato group trust metrics plus
  scalar baselines, all built on a sparse signed trust graph.
* :mod:`repro.semweb` — RDF triple store, N-Triples round-trip, FOAF-like
  agent homepages with trust and rating statements.
* :mod:`repro.web` — simulated decentralized Web: document hosting,
  asynchronous updates, a link-following crawler, a local replica store.
* :mod:`repro.datasets` — synthetic communities and taxonomies standing in
  for the crawled All Consuming / Advogato / Amazon data of §4.
* :mod:`repro.evaluation` — metrics, protocols, attack models and the
  EX1–EX11 experiment suite (see DESIGN.md / EXPERIMENTS.md).
* :mod:`repro.analysis` — reprolint, the domain-aware static-analysis
  pass holding the §3.1 range and determinism invariants
  (``repro lint``; see docs/ANALYSIS.md).

Quickstart::

    from repro import quickstart_community, SemanticWebRecommender
    dataset, taxonomy = quickstart_community(seed=7)
    rec = SemanticWebRecommender.from_dataset(dataset, taxonomy)
    agent = next(iter(dataset.agents))
    for item in rec.recommend(agent, limit=5):
        print(item.product, round(item.score, 3))
"""

from .agent import LocalAgent
from .core import (
    Agent,
    Dataset,
    NeighborhoodFormation,
    Product,
    PureCFRecommender,
    Rating,
    Recommendation,
    SemanticWebRecommender,
    Taxonomy,
    TaxonomyProfileBuilder,
    TrustOnlyRecommender,
    TrustStatement,
    figure1_fragment,
)
from .trust import Advogato, Appleseed, TrustGraph

__version__ = "1.0.0"

__all__ = [
    "Advogato",
    "Agent",
    "Appleseed",
    "Dataset",
    "LocalAgent",
    "NeighborhoodFormation",
    "Product",
    "PureCFRecommender",
    "Rating",
    "Recommendation",
    "SemanticWebRecommender",
    "Taxonomy",
    "TaxonomyProfileBuilder",
    "TrustGraph",
    "TrustOnlyRecommender",
    "TrustStatement",
    "figure1_fragment",
    "quickstart_community",
]


def quickstart_community(seed: int = 7, agents: int = 120, products: int = 200):
    """Generate a small synthetic community for demos and doctests.

    Returns ``(dataset, taxonomy)``.  Thin convenience wrapper around
    :func:`repro.datasets.generate_community`.
    """
    from .datasets import CommunityConfig, generate_community

    config = CommunityConfig(n_agents=agents, n_products=products, seed=seed)
    community = generate_community(config)
    return community.dataset, community.taxonomy
