"""Stdlib-only shared utilities — the bottom layer next to ``repro.obs``.

Like the observability layer, ``repro.util`` depends on nothing but the
standard library and may be imported from every other layer (the RL100
contract registers it below ``core``).  Its one current member is
:mod:`repro.util.sync`, the sanctioned concurrency primitives that the
RL300-series lock-set analysis recognizes as sanitizers.
"""

from __future__ import annotations

from .sync import AtomicSwap, GuardedCache, ReentrantGuard

__all__ = ["AtomicSwap", "GuardedCache", "ReentrantGuard"]
