"""Sanctioned primitives for sharing mutable caches across threads.

The ROADMAP's query-serving daemon keeps :class:`ProfileStore` packed
matrices and trust neighborhoods warm while serving batched concurrent
queries, which means every shared cache must survive N readers racing an
invalidating writer.  Rather than sprinkling ``threading`` calls through
domain code, the repository blesses exactly three primitives — and the
RL300-series concurrency analysis (:mod:`repro.analysis.concurrency`)
treats them as sanitizers:

:class:`GuardedCache`
    a keyed cache whose :meth:`~GuardedCache.get_or_build` is atomic
    (one build per key per invalidation epoch), so the check-then-act
    window of ``if key not in cache: cache[key] = build()`` cannot open;
:class:`AtomicSwap`
    a single slot published by *replacement* — derive a complete new
    value, then swap the reference; readers keep whatever snapshot they
    dereferenced.  This is the contract for packed-matrix lazy fields,
    whose in-place mutation RL302 forbids;
:class:`ReentrantGuard`
    a named re-entrant lock for compound critical sections spanning
    several caches (e.g. dropping a profile dict and its packed matrix
    in one atomic step).

Single-threaded behavior is identical to the bare-dict code these
replace: builders run exactly when the bare code ran them, in the same
order, with the same inputs, so the 1e-9 oracles never move.  Values
must be treated as immutable once published — that is what makes the
lock-free read fast paths exact under CPython's atomic dict/attribute
loads.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from typing import Generic, TypeVar

__all__ = ["AtomicSwap", "GuardedCache", "ReentrantGuard"]

K = TypeVar("K")
V = TypeVar("V")

#: Sentinel distinguishing "absent" from a legitimately falsy value.
_MISSING: object = object()


class ReentrantGuard:
    """A named re-entrant lock; ``with guard:`` marks a critical section.

    The RL30x lock-set inference treats an acquired ``ReentrantGuard``
    (or the implicit guard of the cache primitives below) as protecting
    every shared-state access in its body.  Re-entrancy matters: cache
    builders routinely call back into sibling caches sharing one guard
    (``ProfileStore.matrix`` builds through ``ProfileStore.profile``).
    """

    __slots__ = ("name", "_lock")

    def __init__(self, name: str = "guard") -> None:
        self.name = name
        self._lock = threading.RLock()

    def __enter__(self) -> "ReentrantGuard":
        self._lock.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._lock.release()

    # OS locks don't cross process boundaries: a pickled guard (objects
    # holding these primitives ride to ProcessPool workers) rehydrates
    # with a fresh, unheld lock.  Pickle's memo keeps guard *sharing*
    # intact, so sibling caches tied to one guard stay tied in the child.
    def __getstate__(self) -> str:
        return self.name

    def __setstate__(self, state: str) -> None:
        self.name = state
        self._lock = threading.RLock()

    def __repr__(self) -> str:
        return f"ReentrantGuard({self.name!r})"


class GuardedCache(Generic[K, V]):
    """A keyed cache with atomic get-or-build and guarded invalidation.

    :meth:`get_or_build` is the only fill path: the builder runs under
    the guard, at most once per key per invalidation epoch.  Reads are
    lock-free on the hot path (CPython dict loads are atomic); the
    double-check under the guard makes the slow path exact.  Readers may
    hold a value across an invalidation — per-call snapshot consistency,
    the same contract the bare dicts had single-threaded.

    Pass a shared :class:`ReentrantGuard` to tie several caches into one
    critical section; :meth:`held` exposes the guard for compound
    operations (``with cache.held(): ...``).
    """

    __slots__ = ("name", "_guard", "_data")

    def __init__(
        self, name: str = "cache", guard: ReentrantGuard | None = None
    ) -> None:
        self.name = name
        self._guard = guard if guard is not None else ReentrantGuard(f"{name}.guard")
        self._data: dict[K, V] = {}

    def get_or_build(self, key: K, build: Callable[[K], V]) -> V:
        """The cached value for *key*, building it under the guard if absent.

        *build* receives the key; it runs while the guard is held, so it
        must not block on io (RL303) and must not try to acquire an
        unrelated lock.  Re-entrant sibling fills through a shared guard
        are fine.
        """
        value = self._data.get(key, _MISSING)  # lock-free fast path
        if value is not _MISSING:
            return value  # type: ignore[return-value]
        with self._guard:
            try:
                return self._data[key]
            except KeyError:
                built = build(key)
                self._data[key] = built
                return built

    def peek(self, key: K) -> V | None:
        """The cached value for *key* without building (``None`` if absent)."""
        return self._data.get(key)

    def store(self, key: K, value: V) -> None:
        """Unconditionally publish *value* for *key* under the guard."""
        with self._guard:
            self._data[key] = value

    def invalidate(self, key: K | None = None) -> None:
        """Drop one entry (or all entries when *key* is ``None``)."""
        with self._guard:
            if key is None:
                self._data.clear()
            else:
                self._data.pop(key, None)

    def snapshot(self) -> dict[K, V]:
        """A point-in-time copy of the cache contents."""
        with self._guard:
            return dict(self._data)

    def held(self) -> ReentrantGuard:
        """The cache's guard, for compound multi-cache critical sections."""
        return self._guard

    def __getstate__(self) -> tuple[str, ReentrantGuard, dict[K, V]]:
        return (self.name, self._guard, self._data)

    def __setstate__(self, state: tuple[str, ReentrantGuard, dict[K, V]]) -> None:
        self.name, self._guard, self._data = state

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __repr__(self) -> str:
        return f"GuardedCache({self.name!r}, entries={len(self._data)})"


class AtomicSwap(Generic[V]):
    """A single shared slot published by replacement, never mutated.

    The packed-matrix contract: derive a complete new value, then swap
    the reference.  :meth:`get` never blocks (CPython attribute loads
    are atomic); :meth:`get_or_build` is the lazy-field pattern
    (``if self._x is None: self._x = build()``) made atomic.  The held
    value itself must be immutable — rebuild and :meth:`swap`, never
    mutate in place (RL302).
    """

    __slots__ = ("name", "_guard", "_value")

    def __init__(
        self, name: str = "slot", guard: ReentrantGuard | None = None
    ) -> None:
        self.name = name
        self._guard = guard if guard is not None else ReentrantGuard(f"{name}.guard")
        self._value: V | None = None

    def get(self) -> V | None:
        """The current value (``None`` when empty); never blocks."""
        return self._value

    def get_or_build(self, build: Callable[[], V]) -> V:
        """The current value, building and publishing it if empty.

        *build* runs under the guard, at most once per invalidation
        epoch; the same io/lock discipline as
        :meth:`GuardedCache.get_or_build` applies.
        """
        value = self._value
        if value is not None:
            return value
        with self._guard:
            current = self._value
            if current is None:
                current = build()
                self._value = current
            return current

    def swap(self, value: V | None) -> V | None:
        """Publish *value*, returning the previous one."""
        with self._guard:
            previous, self._value = self._value, value
            return previous

    def clear(self) -> V | None:
        """Empty the slot (equivalent to ``swap(None)``)."""
        return self.swap(None)

    def held(self) -> ReentrantGuard:
        """The slot's guard, for compound critical sections."""
        return self._guard

    def __getstate__(self) -> tuple[str, ReentrantGuard, "V | None"]:
        return (self.name, self._guard, self._value)

    def __setstate__(self, state: tuple[str, ReentrantGuard, "V | None"]) -> None:
        self.name, self._guard, self._value = state

    def __repr__(self) -> str:
        state = "empty" if self._value is None else "set"
        return f"AtomicSwap({self.name!r}, {state})"
